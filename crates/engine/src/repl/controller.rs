//! Autopilot failover: the cluster controller.
//!
//! The controller owns one primary [`Engine`], its [`ShipListener`],
//! the replica fleet and the read [`Router`], and closes the loop the
//! manual promotion API leaves open: *noticing* that the primary is
//! gone and *repairing* the cluster without losing anything a client
//! was told is durable.
//!
//! # Failure detection
//!
//! The detector is deadline-based over signals the replication stream
//! already produces — no extra chatter on the wire:
//!
//! - **Crash** is cheap to spot: the engine lives in this process, so
//!   [`EngineState`] leaving `Running` (a poisoned scheduler whose
//!   restart budget is spent, or a stop) is an immediate verdict.
//! - **Partition** is the subtle one. Every replica tracks the age of
//!   the last heartbeat or frame it saw; when the *freshest* replica's
//!   age exceeds `heartbeat_timeout` for `miss_threshold` consecutive
//!   polls, the controller enters a re-probe phase paced by a jittered
//!   [`Backoff`] — a transient stall clears itself during the probes
//!   and resets the detector; a dark link does not. Only after the
//!   probes are exhausted, with the engine still `Running`, is the
//!   verdict `Partition`.
//!
//! Using the freshest replica (not the stalest) is deliberate: one
//! slow replica is a replica problem; *all* replicas going silent at
//! once is a primary problem.
//!
//! # The failover sequence
//!
//! 1. **Elect** the replica with the highest *durable* LSN — what a
//!    replica fsync'd is what it acked, so the winner carries every
//!    acked-durable update — and pre-check that its directory has not
//!    already reached the target term. Everything that can *refuse*
//!    runs here, before the old primary is touched: a failover with no
//!    promotable candidate is a no-op error, never an outage.
//! 2. **Demote** the old primary: shut down its ship listener and the
//!    engine itself. Even if this node were unreachable instead of
//!    co-located, term fencing makes the demotion safe — see below.
//! 3. **Promote** the winner at `term + 1`. If the promotion itself
//!    fails here (an I/O error in recovery), the controller rolls
//!    back: it resurrects the old primary from its own directory,
//!    re-ships it and restarts the fleet — counted in
//!    `failed_failovers` — rather than leaving the cluster headless.
//! 4. **Re-ship**: start a fresh [`ShipListener`] over the promoted
//!    directory with `term_floor` at the promotion LSN, restart the
//!    surviving replicas against it (a survivor whose WAL ran past the
//!    floor — or that missed more than one term — is
//!    force-bootstrapped), and swap the router's replica pool. A
//!    survivor that cannot be restarted is dropped *loudly*: named in
//!    [`FailoverReport::lost`] and counted in `lost_replicas`. If the
//!    listener itself cannot start, the term is already burned in the
//!    winner's MANIFEST, so the cluster rolls *forward* to a degraded
//!    primary-only regime; the stale survivors are shut down (their
//!    old durable state must never win a later election against
//!    writes acked at the new term).
//! 5. **Re-point** the router at the promoted engine
//!    ([`Router::repoint`]). In-flight reads against the dead handle
//!    resolve as errors, never as stale answers counted fresh.
//!
//! # Why a zombie primary cannot ack
//!
//! The promotion bumped the term in the winner's MANIFEST before the
//! new engine served anything. A resurrected old primary still speaks
//! `term n`: replicas that adopted `n+1` refuse its session outright
//! (and persist their term, so the refusal survives *their* restarts),
//! its acks carry the stale term and are discarded, and its own
//! listener fences any peer that has seen the newer term. At most one
//! primary can hold a given term ([`PromoteError::StaleTerm`]), so
//! "durable" can only ever have been said by the term's one owner.

use crate::config::EngineConfig;
use crate::repl::failover::{self as failover_api, PromoteError};
use crate::repl::replica::{Replica, ReplicaConfig};
use crate::repl::router::Router;
use crate::repl::ship::{ShipConfig, ShipListener, ShipTrace};
use crate::retry::Backoff;
use crate::runtime::{Engine, EngineHandle};
use crate::supervisor::EngineState;
use quts_db::snapshot;
use quts_metrics::{FailoverStep, LogHistogram, TraceEvent};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Knobs for the cluster controller's failure detector.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Consecutive polls the freshest replica heartbeat must be stale
    /// before the controller starts re-probing.
    pub miss_threshold: u32,
    /// Heartbeat age past which a poll counts as a miss. Must comfortably
    /// exceed the ship heartbeat interval or a healthy idle link trips it.
    pub heartbeat_timeout: Duration,
    /// Re-probe backoff floor (jittered, doubling).
    pub probe_backoff_base: Duration,
    /// Re-probe backoff cap.
    pub probe_backoff_cap: Duration,
    /// Re-probes before a still-silent link becomes a `Partition`
    /// verdict.
    pub probe_retries: u32,
    /// Whether the detector may fail over on its own. Off by default:
    /// with this false the controller only observes, and
    /// [`Cluster::failover_now`] is the sole path to promotion — the
    /// cluster behaves exactly like the hand-wired primary + replicas
    /// it was built from.
    pub auto_failover: bool,
    /// Detector poll interval.
    pub poll_interval: Duration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            miss_threshold: 3,
            heartbeat_timeout: Duration::from_millis(250),
            probe_backoff_base: Duration::from_millis(10),
            probe_backoff_cap: Duration::from_millis(100),
            probe_retries: 3,
            auto_failover: false,
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl ControllerConfig {
    /// Builder: sets the miss threshold and heartbeat deadline.
    pub fn with_detection(mut self, misses: u32, timeout: Duration) -> Self {
        assert!(misses > 0, "miss threshold must be positive");
        self.miss_threshold = misses;
        self.heartbeat_timeout = timeout;
        self
    }

    /// Builder: sets the re-probe backoff floor/cap and retry budget.
    pub fn with_probes(mut self, base: Duration, cap: Duration, retries: u32) -> Self {
        self.probe_backoff_base = base;
        self.probe_backoff_cap = cap;
        self.probe_retries = retries;
        self
    }

    /// Builder: arms automatic failover.
    pub fn with_auto_failover(mut self, on: bool) -> Self {
        self.auto_failover = on;
        self
    }

    /// Builder: sets the detector poll interval.
    pub fn with_poll_interval(mut self, every: Duration) -> Self {
        self.poll_interval = every;
        self
    }
}

/// What the detector concluded about a lost primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureVerdict {
    /// The engine left `Running` in-process: a crash (or stop).
    Crash,
    /// The engine still runs but every replica's link went dark past
    /// the probe budget: a partition. The old primary is a live zombie
    /// and only term fencing keeps it harmless.
    Partition,
}

impl FailureVerdict {
    /// Stable lowercase name for logs and the bench report.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureVerdict::Crash => "crash",
            FailureVerdict::Partition => "partition",
        }
    }
}

/// What one failover did and what it cost, phase by phase.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The term the failover established.
    pub term: u64,
    /// Name of the promoted replica.
    pub promoted: String,
    /// Why the primary was given up on.
    pub verdict: FailureVerdict,
    /// First suspicion → confirmed dead.
    pub detect_us: u64,
    /// Confirmed → promoted engine recovered.
    pub promote_us: u64,
    /// Promoted → router re-pointed (includes replica restarts).
    pub repoint_us: u64,
    /// Total: first suspicion → router re-pointed.
    pub mttr_us: u64,
    /// Replicas the failover could not carry over: no start config for
    /// their name, a restart error, or (degraded roll-forward) no
    /// listener to restart them against. Empty on a clean failover.
    pub lost: Vec<String>,
}

/// A point-in-time view of the cluster, for the `REPL`/`METRICS` verbs.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Current fencing term.
    pub term: u64,
    /// Completed failovers.
    pub failovers: u64,
    /// Stale-term frames/acks/sessions fenced by the *current*
    /// listener (resets across failover, like the listener itself).
    pub fenced_frames: u64,
    /// Microseconds since the last failover completed; `None` if the
    /// founding primary still serves.
    pub last_failover_age_us: Option<u64>,
    /// Detection-latency median across failovers.
    pub detect_p50_us: Option<u64>,
    /// Detection-latency p99.
    pub detect_p99_us: Option<u64>,
    /// MTTR median across failovers.
    pub mttr_p50_us: Option<u64>,
    /// MTTR p99.
    pub mttr_p99_us: Option<u64>,
    /// Every promotion as `(term, replica name)` — the conformance
    /// invariant asserts the terms are unique and increasing.
    pub promotions: Vec<(u64, String)>,
    /// Failovers that errored *after* demoting the old primary and had
    /// to roll back (old primary resurrected) or roll forward degraded
    /// (primary-only, no listener). Pre-demotion refusals — no
    /// candidate, stale winner — are not failures; nothing was touched.
    pub failed_failovers: u64,
    /// Replicas dropped from the fleet across all failovers (missing
    /// start config, restart error, or degraded roll-forward).
    pub lost_replicas: u64,
}

/// Counters and histograms shared between the controller, its detector
/// thread, and stats readers.
struct ClusterShared {
    term: AtomicU64,
    failovers: AtomicU64,
    /// µs since `epoch` when the last failover completed; `u64::MAX`
    /// means never.
    last_failover_us: AtomicU64,
    epoch: Instant,
    detect: Mutex<LogHistogram>,
    mttr: Mutex<LogHistogram>,
    promotions: Mutex<Vec<(u64, String)>>,
    reports: Mutex<Vec<FailoverReport>>,
    failed_failovers: AtomicU64,
    lost_replicas: AtomicU64,
}

/// The pieces the controller owns and replaces wholesale at failover.
struct Core {
    engine: Option<Engine>,
    ship: Option<ShipListener>,
    replicas: Vec<Replica>,
    /// Start configs keyed implicitly by `ReplicaConfig::name` (names
    /// are unique — [`Cluster::start`] asserts it), kept so survivors
    /// can be restarted against the promoted primary.
    configs: Vec<ReplicaConfig>,
    /// The serving primary's durability directory — the rollback
    /// target when a promotion fails after the demotion point.
    primary_dir: PathBuf,
}

impl Core {
    fn config_for(&self, name: &str) -> Option<ReplicaConfig> {
        self.configs.iter().find(|c| c.name == name).cloned()
    }
}

/// A self-healing replication cluster: primary + shipper + replicas +
/// router under one controller. See the module docs for the failover
/// contract.
pub struct Cluster {
    core: Arc<Mutex<Core>>,
    shared: Arc<ClusterShared>,
    router: Arc<Router>,
    /// Template for engines recovered at promotion (durability dir is
    /// overridden by the winner's directory).
    engine_template: EngineConfig,
    /// Template for post-failover ship listeners (addr/term_floor are
    /// overridden; trace wiring is rebuilt from the promoted handle).
    ship_template: ShipConfig,
    config: ControllerConfig,
    stop: Arc<AtomicBool>,
    monitor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("term", &self.shared.term.load(Ordering::Acquire))
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Takes over an already-wired cluster: the running primary, its
    /// ship listener, the replicas (paired with the configs they were
    /// started from — needed to restart survivors after a promotion)
    /// and the shared router. The controller's term starts at whatever
    /// the listener read from the primary's MANIFEST.
    ///
    /// Replica names must be unique within the cluster: survivors are
    /// matched back to their start configs by name at failover, so a
    /// duplicate would silently restart the wrong replica. Duplicates
    /// panic here rather than corrupting the fleet later.
    ///
    /// # Panics
    ///
    /// Panics if two members share a `ReplicaConfig::name`.
    pub fn start(
        engine: Engine,
        ship: ShipListener,
        members: Vec<(Replica, ReplicaConfig)>,
        router: Arc<Router>,
        engine_template: EngineConfig,
        ship_template: ShipConfig,
        config: ControllerConfig,
    ) -> Cluster {
        let term = ship.term();
        let primary_dir = ship.dir();
        let (replicas, configs): (Vec<Replica>, Vec<ReplicaConfig>) =
            members.into_iter().unzip();
        {
            let mut names: Vec<&str> = configs.iter().map(|c| c.name.as_str()).collect();
            names.sort_unstable();
            for pair in names.windows(2) {
                assert_ne!(
                    pair[0], pair[1],
                    "replica names must be unique within a cluster"
                );
            }
        }
        let shared = Arc::new(ClusterShared {
            term: AtomicU64::new(term),
            failovers: AtomicU64::new(0),
            last_failover_us: AtomicU64::new(u64::MAX),
            epoch: Instant::now(),
            detect: Mutex::new(LogHistogram::new()),
            mttr: Mutex::new(LogHistogram::new()),
            promotions: Mutex::new(Vec::new()),
            reports: Mutex::new(Vec::new()),
            failed_failovers: AtomicU64::new(0),
            lost_replicas: AtomicU64::new(0),
        });
        let core = Arc::new(Mutex::new(Core {
            engine: Some(engine),
            ship: Some(ship),
            replicas,
            configs,
            primary_dir,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = config.auto_failover.then(|| {
            let core = Arc::clone(&core);
            let shared = Arc::clone(&shared);
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let cfg = config.clone();
            let engine_template = engine_template.clone();
            let ship_template = ship_template.clone();
            thread::Builder::new()
                .name("quts-cluster-monitor".into())
                .spawn(move || {
                    monitor_main(
                        &core,
                        &shared,
                        &router,
                        &stop,
                        &cfg,
                        &engine_template,
                        &ship_template,
                    )
                })
                .expect("spawn cluster monitor thread")
        });
        Cluster {
            core,
            shared,
            router,
            engine_template,
            ship_template,
            config,
            stop,
            monitor,
        }
    }

    /// The router this cluster routes reads through.
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// A cheap cloneable stats reader, for wiring the cluster into a
    /// server's `REPL`/`METRICS` verbs without handing over ownership.
    pub fn stats_handle(&self) -> ClusterHandle {
        ClusterHandle {
            core: Arc::clone(&self.core),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current primary's client handle (post-failover this is the
    /// promoted engine's).
    pub fn primary(&self) -> EngineHandle {
        self.router.primary()
    }

    /// Current fencing term.
    pub fn term(&self) -> u64 {
        self.shared.term.load(Ordering::Acquire)
    }

    /// The current ship listener's address (changes across failover).
    pub fn ship_addr(&self) -> Option<SocketAddr> {
        let core = self.core.lock().expect("cluster core lock");
        core.ship.as_ref().map(|s| s.addr())
    }

    /// Every completed failover, oldest first.
    pub fn reports(&self) -> Vec<FailoverReport> {
        self.shared.reports.lock().expect("reports lock").clone()
    }

    /// Point-in-time cluster stats.
    pub fn stats(&self) -> ClusterStats {
        let fenced = {
            let core = self.core.lock().expect("cluster core lock");
            core.ship.as_ref().map(|s| s.fenced_total()).unwrap_or(0)
        };
        let last = self.shared.last_failover_us.load(Ordering::Acquire);
        let detect = self.shared.detect.lock().expect("detect hist lock");
        let mttr = self.shared.mttr.lock().expect("mttr hist lock");
        ClusterStats {
            term: self.shared.term.load(Ordering::Acquire),
            failovers: self.shared.failovers.load(Ordering::Acquire),
            fenced_frames: fenced,
            last_failover_age_us: (last != u64::MAX)
                .then(|| (self.shared.epoch.elapsed().as_micros() as u64).saturating_sub(last)),
            detect_p50_us: detect.quantile(0.5),
            detect_p99_us: detect.quantile(0.99),
            mttr_p50_us: mttr.quantile(0.5),
            mttr_p99_us: mttr.quantile(0.99),
            promotions: self
                .shared
                .promotions
                .lock()
                .expect("promotions lock")
                .clone(),
            failed_failovers: self.shared.failed_failovers.load(Ordering::Acquire),
            lost_replicas: self.shared.lost_replicas.load(Ordering::Acquire),
        }
    }

    /// Forces a failover right now, regardless of what the detector
    /// thinks — the operator's big red button, and the test/bench hook.
    /// Reports the verdict as [`FailureVerdict::Crash`] when the
    /// engine already left `Running`, [`FailureVerdict::Partition`]
    /// otherwise (the still-live primary is demoted to zombie and
    /// fenced out).
    pub fn failover_now(&self) -> Result<FailoverReport, PromoteError> {
        let mut core = self.core.lock().expect("cluster core lock");
        let verdict = match core.engine.as_ref().map(|e| e.state()) {
            Some(EngineState::Running) => FailureVerdict::Partition,
            _ => FailureVerdict::Crash,
        };
        failover(
            &mut core,
            &self.shared,
            &self.router,
            &self.engine_template,
            &self.ship_template,
            verdict,
            0,
        )
    }

    /// Stops the detector and shuts the whole cluster down: replicas
    /// first (they ack their last group), then the listener, then the
    /// primary.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let mut core = self.core.lock().expect("cluster core lock");
        for replica in core.replicas.drain(..) {
            let _ = replica.shutdown();
        }
        if let Some(ship) = core.ship.take() {
            ship.shutdown();
        }
        if let Some(engine) = core.engine.take() {
            let _ = engine.shutdown();
        }
    }
}

/// A cloneable read-only view of a [`Cluster`]'s failover state —
/// what a server needs to answer `REPL` and `METRICS`.
#[derive(Clone)]
pub struct ClusterHandle {
    core: Arc<Mutex<Core>>,
    shared: Arc<ClusterShared>,
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("term", &self.term())
            .finish_non_exhaustive()
    }
}

impl ClusterHandle {
    /// Current fencing term.
    pub fn term(&self) -> u64 {
        self.shared.term.load(Ordering::Acquire)
    }

    /// Completed failovers.
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::Acquire)
    }

    /// Microseconds since the last completed failover, or `None` if the
    /// founding primary still serves.
    pub fn last_failover_age_us(&self) -> Option<u64> {
        let last = self.shared.last_failover_us.load(Ordering::Acquire);
        (last != u64::MAX)
            .then(|| (self.shared.epoch.elapsed().as_micros() as u64).saturating_sub(last))
    }

    /// Detection-latency histogram (one sample per failover).
    pub fn detect_histogram(&self) -> LogHistogram {
        self.shared.detect.lock().expect("detect hist lock").clone()
    }

    /// MTTR histogram (one sample per failover).
    pub fn mttr_histogram(&self) -> LogHistogram {
        self.shared.mttr.lock().expect("mttr hist lock").clone()
    }

    /// Every promotion as `(term, replica name)`, oldest first.
    pub fn promotions(&self) -> Vec<(u64, String)> {
        self.shared
            .promotions
            .lock()
            .expect("promotions lock")
            .clone()
    }

    /// Stale-term traffic fenced by the current listener.
    pub fn fenced_frames(&self) -> u64 {
        let core = self.core.lock().expect("cluster core lock");
        core.ship.as_ref().map(|s| s.fenced_total()).unwrap_or(0)
    }

    /// Failovers that errored after the demotion point (rolled back or
    /// degraded to primary-only).
    pub fn failed_failovers(&self) -> u64 {
        self.shared.failed_failovers.load(Ordering::Acquire)
    }

    /// Replicas dropped from the fleet across all failovers.
    pub fn lost_replicas(&self) -> u64 {
        self.shared.lost_replicas.load(Ordering::Acquire)
    }
}

/// The detector loop. Polls the engine's in-process state and the
/// replicas' heartbeat ages; on a confirmed verdict, runs the failover
/// under the core lock.
fn monitor_main(
    core: &Arc<Mutex<Core>>,
    shared: &Arc<ClusterShared>,
    router: &Arc<Router>,
    stop: &Arc<AtomicBool>,
    cfg: &ControllerConfig,
    engine_template: &EngineConfig,
    ship_template: &ShipConfig,
) {
    let mut misses: u32 = 0;
    let mut suspected_at: Option<Instant> = None;
    while !stop.load(Ordering::Acquire) {
        thread::sleep(cfg.poll_interval);
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut guard = core.lock().expect("cluster core lock");
        let Some(engine) = guard.engine.as_ref() else {
            return; // failed promotion left the cluster headless
        };

        // Crash: the primary lives in this process, so its lifecycle
        // state is ground truth — no deadline needed.
        if engine.state() != EngineState::Running {
            let since = suspected_at.unwrap_or_else(Instant::now);
            note_suspected(&guard, shared, suspected_at.is_none());
            let _ = failover(
                &mut guard,
                shared,
                router,
                engine_template,
                ship_template,
                FailureVerdict::Crash,
                since.elapsed().as_micros() as u64,
            );
            misses = 0;
            suspected_at = None;
            continue;
        }

        // Partition: judge by the *freshest* replica. One silent
        // replica is that replica's problem; all of them silent at
        // once is the primary's.
        let freshest = freshest_beat_us(&guard);
        let stale = match freshest {
            Some(age_us) => Duration::from_micros(age_us) > cfg.heartbeat_timeout,
            None => false, // no bootstrapped replica yet — nothing to judge by
        };
        if !stale {
            misses = 0;
            suspected_at = None;
            continue;
        }
        misses += 1;
        if suspected_at.is_none() {
            suspected_at = Some(Instant::now());
            note_suspected(&guard, shared, true);
        }
        if misses < cfg.miss_threshold {
            continue;
        }

        // Deadline blown repeatedly. Re-probe with backoff: a stall
        // clears itself here, a dark link does not. The core lock is
        // dropped across the probe sleeps — stats readers and a manual
        // `failover_now` must not stall behind the detector for the
        // whole backoff sequence — and each probe (plus the final
        // verdict) re-acquires and re-validates instead.
        let failovers_before = shared.failovers.load(Ordering::Acquire);
        drop(guard);
        let mut backoff = Backoff::new(cfg.probe_backoff_base, cfg.probe_backoff_cap);
        let mut recovered = false;
        for _ in 0..cfg.probe_retries {
            thread::sleep(backoff.next_sleep());
            if stop.load(Ordering::Acquire) {
                return;
            }
            let probe = core.lock().expect("cluster core lock");
            if probe.engine.as_ref().map(|e| e.state()) != Some(EngineState::Running) {
                break; // crash (or headless) — settled under the lock below
            }
            let fresh_now = freshest_beat_us(&probe);
            if fresh_now.is_some_and(|age| Duration::from_micros(age) <= cfg.heartbeat_timeout) {
                recovered = true;
                break;
            }
        }
        if recovered {
            misses = 0;
            suspected_at = None;
            continue;
        }

        // Re-validate under a fresh lock before acting: a manual
        // `failover_now` may have already repaired the cluster while
        // the lock was down, or the link may have come back between
        // the last probe and now.
        let mut guard = core.lock().expect("cluster core lock");
        if shared.failovers.load(Ordering::Acquire) != failovers_before {
            misses = 0;
            suspected_at = None;
            continue;
        }
        let Some(engine) = guard.engine.as_ref() else {
            return; // failed rollback left the cluster headless
        };
        let verdict = if engine.state() == EngineState::Running {
            let fresh_now = freshest_beat_us(&guard);
            if fresh_now.is_some_and(|age| Duration::from_micros(age) <= cfg.heartbeat_timeout) {
                misses = 0;
                suspected_at = None;
                continue;
            }
            FailureVerdict::Partition
        } else {
            FailureVerdict::Crash
        };
        let since = suspected_at.unwrap_or_else(Instant::now);
        let _ = failover(
            &mut guard,
            shared,
            router,
            engine_template,
            ship_template,
            verdict,
            since.elapsed().as_micros() as u64,
        );
        misses = 0;
        suspected_at = None;
    }
}

/// Age in µs of the most recent heartbeat any bootstrapped replica saw,
/// or `None` when no replica has both bootstrapped and heard one.
fn freshest_beat_us(core: &Core) -> Option<u64> {
    core.replicas
        .iter()
        .map(|r| r.stats())
        .filter(|s| s.ready)
        .map(|s| s.heartbeat_age_us)
        .filter(|&age| age != u64::MAX)
        .min()
}

/// Stamps a `Suspected` flight event into the (possibly dying) old
/// primary's recorder the first time suspicion arises.
fn note_suspected(core: &Core, shared: &ClusterShared, first: bool) {
    if !first {
        return;
    }
    if let Some(engine) = core.engine.as_ref() {
        engine.handle().trace_push(TraceEvent::Failover {
            term: shared.term.load(Ordering::Acquire),
            step: FailoverStep::Suspected,
            elapsed_us: 0,
        });
    }
}

/// The failover itself: elect (while nothing is demoted yet), demote,
/// promote at `term + 1`, re-ship behind the promotion floor, restart
/// survivors, re-point the router. Called with the core locked; on
/// success the core holds the new regime.
///
/// Ordering is the error-containment story. Everything that can
/// *refuse* — the election, the winner's term pre-check — runs before
/// the old primary is touched, so `NoCandidate` against a healthy
/// primary is a no-op, not an outage. Errors past the demotion point
/// are repaired instead of propagated half-done: a failed promotion
/// rolls back to the old primary's directory ([`rollback`]); a failed
/// re-ship rolls forward to a degraded primary-only regime (the term
/// is already burned in the winner's MANIFEST). Both paths count in
/// `failed_failovers`, and dropped replicas in `lost_replicas`.
#[allow(clippy::too_many_arguments)]
fn failover(
    core: &mut Core,
    shared: &ClusterShared,
    router: &Router,
    engine_template: &EngineConfig,
    ship_template: &ShipConfig,
    verdict: FailureVerdict,
    detect_us: u64,
) -> Result<FailoverReport, PromoteError> {
    let confirm = Instant::now();
    if let Some(engine) = core.engine.as_ref() {
        engine.handle().trace_push(TraceEvent::Failover {
            term: shared.term.load(Ordering::Acquire),
            step: FailoverStep::Confirmed,
            elapsed_us: detect_us,
        });
    }

    // Elect the most-durable replica and pre-check that its directory
    // can actually hold the next term — both before the old regime is
    // touched, so a refusal leaves a working primary working.
    let new_term = shared.term.load(Ordering::Acquire) + 1;
    let winner = failover_api::elect(&core.replicas)?;
    let winner_term = snapshot::manifest_term(&core.replicas[winner].dir());
    if winner_term >= new_term {
        return Err(PromoteError::StaleTerm {
            current: winner_term,
            requested: new_term,
        });
    }

    // Demote the old primary before anything serves at the new term.
    // Co-located, this is a real shutdown; were it remote and dark,
    // term fencing alone keeps the zombie harmless (module docs).
    if let Some(ship) = core.ship.take() {
        ship.shutdown();
    }
    if let Some(engine) = core.engine.take() {
        let _ = engine.shutdown();
    }

    // Promote the winner at the next term.
    let mut survivors = std::mem::take(&mut core.replicas);
    let chosen = survivors.remove(winner);
    let promoted = chosen.stats().name;
    let promoted_dir = chosen.dir();
    let engine = match failover_api::promote_at_term(chosen, engine_template.clone(), new_term) {
        Ok(engine) => engine,
        Err(e) => {
            // The winner is consumed and the old primary is down; the
            // only honest repair is resurrecting the old regime from
            // its own directory.
            rollback(core, shared, router, engine_template, ship_template, survivors);
            return Err(e);
        }
    };
    shared.term.store(new_term, Ordering::Release);
    let handle = engine.handle();
    let promote_us = confirm.elapsed().as_micros() as u64;
    handle.trace_push(TraceEvent::Failover {
        term: new_term,
        step: FailoverStep::Promoted,
        elapsed_us: detect_us + promote_us,
    });

    // Re-ship from the promoted directory. The term floor is the
    // promotion LSN: a survivor resuming at or below it shares the
    // history; above it, its tail may diverge and it re-bootstraps.
    let promoted_lsn = engine.stats().wal_last_lsn;
    let mut ship_cfg = ship_template.clone().with_term_floor(promoted_lsn);
    ship_cfg.trace = ship_template
        .trace
        .as_ref()
        .map(|_| ShipTrace::from_handle(&handle));
    let ship = ShipListener::start(promoted_dir.clone(), ship_cfg).ok();

    // Restart survivors against the new primary and give the router
    // the fresh handles — the old pool's frozen stats must not qualify
    // another read. Failures here shrink the fleet, never abort the
    // failover: each dropped survivor is named in the report and
    // counted, and the promoted primary serves regardless.
    let mut restarted = Vec::with_capacity(survivors.len());
    let mut lost: Vec<String> = Vec::new();
    match ship.as_ref() {
        Some(ship) => {
            let addr = ship.addr();
            for survivor in survivors {
                let name = survivor.stats().name;
                let _ = survivor.shutdown();
                let Some(cfg) = core.config_for(&name) else {
                    // Unreachable while Cluster::start's unique-name
                    // assert holds — a miss means members and configs
                    // disagree, which is a wiring bug.
                    debug_assert!(false, "no start config for replica {name}");
                    lost.push(name);
                    continue;
                };
                match Replica::start(addr, cfg) {
                    Ok(replica) => restarted.push(replica),
                    Err(_) => lost.push(name),
                }
            }
        }
        None => {
            // No listener: the term is burned (the winner's MANIFEST
            // carries it), so there is no rolling back to the old
            // primary — degrade to a primary-only regime. Survivors
            // are shut down rather than left pointed at a dead
            // address: their stale durable state must never win a
            // later election against writes acked at this term.
            shared.failed_failovers.fetch_add(1, Ordering::AcqRel);
            for survivor in survivors {
                let name = survivor.stats().name;
                let _ = survivor.shutdown();
                lost.push(name);
            }
        }
    }
    shared
        .lost_replicas
        .fetch_add(lost.len() as u64, Ordering::AcqRel);
    router.set_replicas(restarted.iter().map(|r| r.handle()).collect());
    router.repoint(handle.clone());
    let repoint_us = (confirm.elapsed().as_micros() as u64).saturating_sub(promote_us);
    let mttr_us = detect_us + promote_us + repoint_us;
    handle.trace_push(TraceEvent::Failover {
        term: new_term,
        step: FailoverStep::Repointed,
        elapsed_us: mttr_us,
    });

    core.engine = Some(engine);
    core.ship = ship;
    core.replicas = restarted;
    core.primary_dir = promoted_dir;

    shared.failovers.fetch_add(1, Ordering::AcqRel);
    shared.last_failover_us.store(
        shared.epoch.elapsed().as_micros() as u64,
        Ordering::Release,
    );
    shared
        .detect
        .lock()
        .expect("detect hist lock")
        .record(detect_us);
    shared.mttr.lock().expect("mttr hist lock").record(mttr_us);
    shared
        .promotions
        .lock()
        .expect("promotions lock")
        .push((new_term, promoted.clone()));
    let report = FailoverReport {
        term: new_term,
        promoted,
        verdict,
        detect_us,
        promote_us,
        repoint_us,
        mttr_us,
        lost,
    };
    shared
        .reports
        .lock()
        .expect("reports lock")
        .push(report.clone());
    Ok(report)
}

/// Best-effort resurrection of the demoted primary after a promotion
/// failed *past* the demotion point: recover an engine from the old
/// primary's own directory, re-ship it, restart every configured
/// replica against the new listener and point the router back at it.
/// The old directory's term never advanced, so resuming it cannot
/// conflict with the failed promotion — no engine ever served at the
/// burned term.
///
/// Counted in `failed_failovers` either way. If even the resurrection
/// fails, the cluster is left deliberately empty (`core.engine ==
/// None`, no replicas in the router) — visible as a failed failover
/// with no serving primary — rather than half-wired to dead handles.
fn rollback(
    core: &mut Core,
    shared: &ClusterShared,
    router: &Router,
    engine_template: &EngineConfig,
    ship_template: &ShipConfig,
    survivors: Vec<Replica>,
) {
    shared.failed_failovers.fetch_add(1, Ordering::AcqRel);
    // The survivors point at the demoted listener's dead address; the
    // rollback listener binds afresh, so everything restarts from its
    // start config (the consumed winner included — promotion sealed
    // its directory, which restarts like any stopped replica).
    for survivor in survivors {
        let _ = survivor.shutdown();
    }
    let dir = core.primary_dir.clone();
    let Ok(engine) = Engine::recover(dir.clone(), engine_template.clone()) else {
        router.set_replicas(Vec::new());
        shared
            .lost_replicas
            .fetch_add(core.configs.len() as u64, Ordering::AcqRel);
        return; // headless: nothing serves until the operator steps in
    };
    let handle = engine.handle();
    // Template floor (not a promotion LSN): with the old history back
    // in charge, any stale-term resume re-bootstrapping is the safe
    // conservative default.
    let mut ship_cfg = ship_template.clone();
    ship_cfg.trace = ship_template
        .trace
        .as_ref()
        .map(|_| ShipTrace::from_handle(&handle));
    let ship = ShipListener::start(dir, ship_cfg).ok();
    let mut replicas = Vec::new();
    if let Some(ship) = ship.as_ref() {
        for cfg in core.configs.clone() {
            match Replica::start(ship.addr(), cfg) {
                Ok(replica) => replicas.push(replica),
                Err(_) => {
                    shared.lost_replicas.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    } else {
        shared
            .lost_replicas
            .fetch_add(core.configs.len() as u64, Ordering::AcqRel);
    }
    router.set_replicas(replicas.iter().map(|r| r.handle()).collect());
    router.repoint(handle);
    core.engine = Some(engine);
    core.ship = ship;
    core.replicas = replicas;
}
