//! The replication wire protocol: a thin binary layer over TCP.
//!
//! The stream payload *is* the WAL: shipped records travel as the exact
//! `[len ‖ crc ‖ lsn ‖ payload]` frames [`quts_db::wal::encode_frame`]
//! produces, so the receiver applies the same CRC check replay does and
//! a corrupted link is detected the same way corrupted media is.
//!
//! ```text
//! replica → primary   HELLO:      "QUTSREPL" ‖ name_len u16 ‖ name ‖ resume_lsn u64 ‖ term u64
//! primary → replica   preamble:   TAG_TERM ‖ term u64       (the primary's fencing epoch)
//! primary → replica   preamble:   TAG_SNAP ‖ len u64 ‖ snapshot bytes
//!                              or TAG_RESUME               (stream continues at resume_lsn+1)
//! primary → replica   stream:     TAG_FRAME ‖ wal frame    (repeated)
//!                              or TAG_HEARTBEAT ‖ last_lsn u64
//! replica → primary   ack:        TAG_ACK ‖ applied u64 ‖ durable u64 ‖ uu u64 ‖ term u64
//! ```
//!
//! All integers little-endian, matching the WAL on disk.
//!
//! **Term fencing.** Every session carries the sender's fencing epoch:
//! the replica's persisted term rides the hello, the primary announces
//! its own term with `TAG_TERM` before the bootstrap decision, and every
//! ack echoes the term the replica is following. A receiver that knows a
//! higher term refuses the session (or the ack) without mutating any
//! state, so a zombie primary resurrected after a failover can neither
//! feed stale frames to a fenced replica nor collect acks that would let
//! it report writes durable.

use std::io::{self, Read, Write};

/// Magic bytes opening every replication handshake.
pub(crate) const HANDSHAKE_MAGIC: &[u8; 8] = b"QUTSREPL";

/// One shipped WAL frame follows.
pub(crate) const TAG_FRAME: u8 = 0;
/// A snapshot bootstrap follows (length-prefixed snapshot file bytes).
pub(crate) const TAG_SNAP: u8 = 1;
/// A replica progress report follows (applied, durable, `#uu`, term).
pub(crate) const TAG_ACK: u8 = 2;
/// A primary liveness/watermark beacon follows (last file-visible LSN).
pub(crate) const TAG_HEARTBEAT: u8 = 3;
/// Preamble: no bootstrap needed, frames resume from the requested LSN.
pub(crate) const TAG_RESUME: u8 = 4;
/// Preamble: the primary's trace seed follows (u64). Sent before the
/// bootstrap decision when the primary traces; a replica that knows the
/// seed recomputes every update's trace id from `(seed, lsn)` at apply
/// time, so ids never travel inside WAL frames.
pub(crate) const TAG_TRACE: u8 = 5;
/// Preamble: the primary's fencing term follows (u64). Always the first
/// thing the primary writes, so the replica can fence a stale primary
/// before any bootstrap or frame bytes arrive.
pub(crate) const TAG_TERM: u8 = 6;

/// Longest accepted replica name.
pub(crate) const MAX_NAME: usize = 256;
/// Largest accepted snapshot transfer (1 GiB sanity bound).
pub(crate) const MAX_SNAPSHOT: u64 = 1 << 30;

/// The replica's opening message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hello {
    /// Replica name (registry key; routing and metrics label).
    pub name: String,
    /// Highest LSN the replica has applied; the stream resumes after it.
    pub resume_lsn: u64,
    /// Highest fencing term the replica has persisted. A primary whose
    /// own term is lower is a zombie and must refuse the session.
    pub term: u64,
}

/// A replica progress report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Ack {
    /// Highest LSN applied to the replica store.
    pub applied_lsn: u64,
    /// Highest LSN the replica has fsync'd to its own WAL.
    pub durable_lsn: u64,
    /// The replica's total `#uu` at ack time.
    pub uu: u64,
    /// The term the replica acknowledges under; the primary discards
    /// acks from any other term.
    pub term: u64,
}

pub(crate) fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("repl wire: {what}"))
}

/// Writes the replica's handshake.
pub(crate) fn send_hello(w: &mut impl Write, name: &str, resume_lsn: u64, term: u64) -> io::Result<()> {
    assert!(name.len() <= MAX_NAME, "replica name too long");
    let mut buf = Vec::with_capacity(HANDSHAKE_MAGIC.len() + 2 + name.len() + 16);
    buf.extend_from_slice(HANDSHAKE_MAGIC);
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    buf.extend_from_slice(&resume_lsn.to_le_bytes());
    buf.extend_from_slice(&term.to_le_bytes());
    w.write_all(&buf)
}

/// Reads and validates a handshake.
pub(crate) fn read_hello(r: &mut impl Read) -> io::Result<Hello> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != HANDSHAKE_MAGIC {
        return Err(bad("bad handshake magic"));
    }
    let name_len = read_u16(r)? as usize;
    if name_len > MAX_NAME {
        return Err(bad("replica name too long"));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| bad("non-utf8 replica name"))?;
    let resume_lsn = read_u64(r)?;
    let term = read_u64(r)?;
    Ok(Hello {
        name,
        resume_lsn,
        term,
    })
}

/// Writes the trace-seed preamble (single write).
pub(crate) fn send_trace_seed(w: &mut impl Write, seed: u64) -> io::Result<()> {
    let mut buf = [0u8; 9];
    buf[0] = TAG_TRACE;
    buf[1..9].copy_from_slice(&seed.to_le_bytes());
    w.write_all(&buf)
}

/// Writes the term announcement (single write). Always the primary's
/// first bytes on a session.
pub(crate) fn send_term(w: &mut impl Write, term: u64) -> io::Result<()> {
    let mut buf = [0u8; 9];
    buf[0] = TAG_TERM;
    buf[1..9].copy_from_slice(&term.to_le_bytes());
    w.write_all(&buf)
}

/// Writes one progress report (single write: arrives atomically in
/// practice, so the shipper's timeout-bounded reads never desync).
pub(crate) fn send_ack(w: &mut impl Write, ack: Ack) -> io::Result<()> {
    let mut buf = [0u8; 33];
    buf[0] = TAG_ACK;
    buf[1..9].copy_from_slice(&ack.applied_lsn.to_le_bytes());
    buf[9..17].copy_from_slice(&ack.durable_lsn.to_le_bytes());
    buf[17..25].copy_from_slice(&ack.uu.to_le_bytes());
    buf[25..33].copy_from_slice(&ack.term.to_le_bytes());
    w.write_all(&buf)
}

/// Reads an ack body (the tag byte was already consumed).
pub(crate) fn read_ack_body(r: &mut impl Read) -> io::Result<Ack> {
    Ok(Ack {
        applied_lsn: read_u64(r)?,
        durable_lsn: read_u64(r)?,
        uu: read_u64(r)?,
        term: read_u64(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        send_hello(&mut buf, "replica-a", 42, 7).unwrap();
        let hello = read_hello(&mut buf.as_slice()).unwrap();
        assert_eq!(
            hello,
            Hello {
                name: "replica-a".into(),
                resume_lsn: 42,
                term: 7,
            }
        );
    }

    #[test]
    fn hello_rejects_garbage() {
        assert!(read_hello(&mut &b"NOTMAGIC\x00\x00"[..]).is_err());
        // Oversized name length is refused before allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(HANDSHAKE_MAGIC);
        buf.extend_from_slice(&(MAX_NAME as u16 + 1).to_le_bytes());
        assert!(read_hello(&mut buf.as_slice()).is_err());
        // A truncated hello (missing the trailing term) is an error, not
        // a silent zero: a peer speaking the pre-term protocol must not
        // slip past the fence unnoticed.
        let mut buf = Vec::new();
        send_hello(&mut buf, "r", 1, 1).unwrap();
        buf.truncate(buf.len() - 8);
        assert!(read_hello(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn trace_seed_roundtrip() {
        let mut buf = Vec::new();
        send_trace_seed(&mut buf, 0xDEAD_BEEF_0042).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), TAG_TRACE);
        assert_eq!(read_u64(&mut r).unwrap(), 0xDEAD_BEEF_0042);
        assert!(r.is_empty());
    }

    #[test]
    fn term_announcement_roundtrip() {
        let mut buf = Vec::new();
        send_term(&mut buf, 9).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), TAG_TERM);
        assert_eq!(read_u64(&mut r).unwrap(), 9);
        assert!(r.is_empty());
    }

    #[test]
    fn ack_roundtrip() {
        let ack = Ack {
            applied_lsn: 7,
            durable_lsn: 5,
            uu: 3,
            term: 2,
        };
        let mut buf = Vec::new();
        send_ack(&mut buf, ack).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), TAG_ACK);
        assert_eq!(read_ack_body(&mut r).unwrap(), ack);
    }
}
