//! The replica process: applies the shipped WAL stream to a local
//! store through register-table semantics, keeps its **own** durable
//! WAL + snapshots (so a promoted replica recovers like a primary), and
//! reports `applied_lsn` / `durable_lsn` / `#uu` back to the shipper.
//!
//! The apply loop is strict about ordering: a frame at or below
//! `applied_lsn` is a duplicate (link retransmission) and is skipped; a
//! frame more than one ahead is a gap and forces a reconnect that
//! resumes from `applied_lsn` — so the replica WAL is always a
//! byte-identical prefix of the primary's (same LSNs, same payloads,
//! same CRCs).
//!
//! Reconnection uses the shared [`Backoff`] helper: capped exponential
//! delay with jitter, reset after any successful session.
//!
//! **Term fencing.** The replica persists the highest fencing term it
//! has followed in its own MANIFEST and sends it in every hello. A
//! primary announcing a *lower* term is a zombie: the session is
//! refused before any preamble is processed, the refusal is counted,
//! and **no local state changes** — not the store, not the WAL, not
//! the term. A higher announced term is adopted (persisted before the
//! first ack under it), and every shipped frame must carry the session
//! term or the link is dropped on the spot.

use crate::repl::wire::{self, Ack};
use crate::retry::Backoff;
use quts_db::snapshot::{self, MANIFEST_NAME};
use quts_db::wal::{self, Frame, Wal};
use quts_db::{FsyncPolicy, QueryOp, QueryResult, StalenessTracker, Store};
use quts_metrics::{update_trace_id, TraceCtx, TraceEvent, TraceRecord, TraceRing, SPAN_APPLY};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Knobs for a [`Replica`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Name reported in the handshake (registry key on the primary).
    pub name: String,
    /// Directory for the replica's own WAL + snapshots.
    pub dir: PathBuf,
    /// Fsync policy for the replica WAL. Frames are appended deferred
    /// (group-commit style): one fsync covers the whole received group
    /// at ack time, never one per frame. Acks always sync first, so
    /// this only bounds loss between acks.
    pub fsync: FsyncPolicy,
    /// Replica WAL segment rotation threshold.
    pub segment_bytes: u64,
    /// Publish a local snapshot every this many applied frames.
    pub snapshot_every: u64,
    /// Sync + ack every this many applied frames.
    pub ack_every: u64,
    /// Reconnect backoff floor.
    pub backoff_base: Duration,
    /// Reconnect backoff cap.
    pub backoff_cap: Duration,
    /// Capacity of the replica's own trace ring. `Some(n)` records a
    /// `replica_apply` event per applied frame (trace ids recomputed
    /// from the primary's announced seed); `None` traces nothing.
    pub trace_capacity: Option<usize>,
}

impl ReplicaConfig {
    /// Defaults for `name` over `dir`: sync-on-ack every 32 frames,
    /// snapshot every 4096, 8 MiB segments, 2 ms → 200 ms backoff.
    pub fn new(name: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        ReplicaConfig {
            name: name.into(),
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            segment_bytes: 8 << 20,
            snapshot_every: 4096,
            ack_every: 32,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(200),
            trace_capacity: None,
        }
    }

    /// Builder: sets the replica WAL fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder: sets the local snapshot cadence (applied frames).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        assert!(every > 0, "snapshot cadence must be positive");
        self.snapshot_every = every;
        self
    }

    /// Builder: sets the sync + ack cadence (applied frames).
    pub fn with_ack_every(mut self, every: u64) -> Self {
        assert!(every > 0, "ack cadence must be positive");
        self.ack_every = every;
        self
    }

    /// Builder: sets the reconnect backoff floor and cap.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Builder: enables apply tracing with a ring of `capacity` records.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        self.trace_capacity = Some(capacity);
        self
    }
}

/// A point-in-time snapshot of a replica's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Replica name.
    pub name: String,
    /// Whether a store has been installed (bootstrap or local recovery)
    /// — reads are only servable once this is true.
    pub ready: bool,
    /// Whether the shipping connection is currently up.
    pub connected: bool,
    /// Highest LSN applied to the store.
    pub applied_lsn: u64,
    /// Highest LSN fsync'd to the replica's own WAL.
    pub durable_lsn: u64,
    /// The primary's last advertised LSN (frames + heartbeats).
    pub primary_lsn: u64,
    /// Frames applied (duplicates excluded).
    pub frames_applied: u64,
    /// Duplicate frames skipped (link retransmission / overlap).
    pub frames_duplicate: u64,
    /// Out-of-order gaps that forced a reconnect.
    pub gaps: u64,
    /// Shipping sessions established.
    pub connections: u64,
    /// Snapshot bootstraps received from the primary.
    pub bootstraps: u64,
    /// Local snapshots published.
    pub snapshots_written: u64,
    /// Reads served from this replica's store.
    pub reads_served: u64,
    /// Total `#uu` of the local staleness tracker (arrivals not yet
    /// applied; ~0 because the replica applies synchronously).
    pub uu_total: u64,
    /// The highest fencing term this replica has followed (persisted in
    /// its MANIFEST).
    pub term: u64,
    /// Fencing events: sessions refused because the primary announced a
    /// stale term, and frames rejected for a term mismatch.
    pub fenced: u64,
    /// Microseconds since the last primary heartbeat (or frame) was
    /// heard; `u64::MAX` until the first one. The failure detector's
    /// raw signal.
    pub heartbeat_age_us: u64,
}

impl ReplicaStats {
    /// Replication lag against a primary watermark (its `wal_last_lsn`).
    pub fn lag_behind(&self, primary_last_lsn: u64) -> u64 {
        primary_last_lsn.saturating_sub(self.applied_lsn)
    }

    /// Sessions beyond the first — how many times the link was re-made.
    pub fn reconnects(&self) -> u64 {
        self.connections.saturating_sub(1)
    }
}

/// Store + staleness tracker behind one lock: reads and applies both
/// take it, so a read never observes a half-applied record.
#[derive(Debug)]
struct ReplicaData {
    store: Option<Store>,
    tracker: StalenessTracker,
}

#[derive(Debug)]
struct SharedState {
    name: String,
    dir: PathBuf,
    data: Mutex<ReplicaData>,
    ready: AtomicBool,
    connected: AtomicBool,
    applied: AtomicU64,
    durable: AtomicU64,
    primary: AtomicU64,
    frames_applied: AtomicU64,
    duplicates: AtomicU64,
    gaps: AtomicU64,
    connections: AtomicU64,
    bootstraps: AtomicU64,
    snapshots: AtomicU64,
    reads: AtomicU64,
    shutdown: AtomicBool,
    graceful: AtomicBool,
    /// The highest fencing term this replica has followed.
    term: AtomicU64,
    /// Fencing events (stale-term sessions refused, mismatched frames).
    fenced: AtomicU64,
    /// Microseconds (since `epoch`) of the last heard heartbeat or
    /// frame; `u64::MAX` until the first.
    last_beat_us: AtomicU64,
    /// The replica's own decision ring (`replica_apply` events).
    ring: Option<parking_lot::Mutex<TraceRing>>,
    /// Trace seed announced by the primary's `TAG_TRACE` preamble.
    trace_seed: AtomicU64,
    /// Whether a seed announcement has arrived (0 is a valid seed).
    trace_seed_set: AtomicBool,
    /// The thread epoch heartbeat ages are measured against.
    epoch: Instant,
}

impl SharedState {
    fn stats(&self) -> ReplicaStats {
        let uu_total = {
            let data = self.data.lock().expect("replica data lock");
            data.tracker.total_unapplied()
        };
        ReplicaStats {
            name: self.name.clone(),
            ready: self.ready.load(Ordering::Acquire),
            connected: self.connected.load(Ordering::Acquire),
            applied_lsn: self.applied.load(Ordering::Acquire),
            durable_lsn: self.durable.load(Ordering::Acquire),
            primary_lsn: self.primary.load(Ordering::Acquire),
            frames_applied: self.frames_applied.load(Ordering::Acquire),
            frames_duplicate: self.duplicates.load(Ordering::Acquire),
            gaps: self.gaps.load(Ordering::Acquire),
            connections: self.connections.load(Ordering::Acquire),
            bootstraps: self.bootstraps.load(Ordering::Acquire),
            snapshots_written: self.snapshots.load(Ordering::Acquire),
            reads_served: self.reads.load(Ordering::Acquire),
            uu_total,
            term: self.term.load(Ordering::Acquire),
            fenced: self.fenced.load(Ordering::Acquire),
            heartbeat_age_us: match self.last_beat_us.load(Ordering::Acquire) {
                u64::MAX => u64::MAX,
                at => (self.epoch.elapsed().as_micros() as u64).saturating_sub(at),
            },
        }
    }

    fn note_beat(&self) {
        self.last_beat_us
            .store(self.epoch.elapsed().as_micros() as u64, Ordering::Release);
    }
}

/// A cloneable read/stats handle to a running (or stopped) replica.
#[derive(Debug, Clone)]
pub struct ReplicaHandle {
    shared: Arc<SharedState>,
}

impl ReplicaHandle {
    /// The replica's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Snapshots the replica's progress counters.
    pub fn stats(&self) -> ReplicaStats {
        self.shared.stats()
    }

    /// Exports the replica's trace ring as JSONL (oldest record first).
    /// `None` when the replica was started without tracing.
    pub fn trace_to_jsonl(&self) -> Option<String> {
        self.shared.ring.as_ref().map(|r| r.lock().to_jsonl())
    }

    /// Snapshots the replica's trace ring as `(records, dropped)`.
    /// `None` when the replica was started without tracing.
    pub fn trace_records(&self) -> Option<(Vec<TraceRecord>, u64)> {
        self.shared.ring.as_ref().map(|r| {
            let ring = r.lock();
            (ring.iter_ordered().cloned().collect(), ring.dropped())
        })
    }

    /// Serves a read from the replica store. `None` until the replica
    /// has a store (bootstrap or local recovery).
    pub fn execute(&self, op: &QueryOp) -> Option<QueryResult> {
        let data = self.shared.data.lock().expect("replica data lock");
        let store = data.store.as_ref()?;
        let result = op.execute(store);
        self.shared.reads.fetch_add(1, Ordering::AcqRel);
        Some(result)
    }
}

/// A replica process: one thread that bootstraps, tails the primary's
/// WAL stream, and maintains its own durable copy.
#[derive(Debug)]
pub struct Replica {
    shared: Arc<SharedState>,
    thread: Option<JoinHandle<()>>,
}

impl Replica {
    /// Starts a replica of the primary shipping at `primary`. If `dir`
    /// holds state from a previous run, the replica recovers from it
    /// first and resumes the stream from its recovered `applied_lsn`.
    pub fn start(primary: SocketAddr, config: ReplicaConfig) -> io::Result<Replica> {
        std::fs::create_dir_all(&config.dir)?;
        let shared = Arc::new(SharedState {
            name: config.name.clone(),
            dir: config.dir.clone(),
            data: Mutex::new(ReplicaData {
                store: None,
                tracker: StalenessTracker::new(0),
            }),
            ready: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            applied: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            primary: AtomicU64::new(0),
            frames_applied: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            gaps: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            bootstraps: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            graceful: AtomicBool::new(false),
            term: AtomicU64::new(snapshot::manifest_term(&config.dir)),
            fenced: AtomicU64::new(0),
            last_beat_us: AtomicU64::new(u64::MAX),
            ring: config
                .trace_capacity
                .map(|cap| parking_lot::Mutex::new(TraceRing::new(cap))),
            trace_seed: AtomicU64::new(0),
            trace_seed_set: AtomicBool::new(false),
            epoch: Instant::now(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("quts-replica-{}", config.name))
                .spawn(move || replica_main(primary, config, shared))
                .expect("spawn replica")
        };
        Ok(Replica {
            shared,
            thread: Some(thread),
        })
    }

    /// A cloneable read/stats handle.
    pub fn handle(&self) -> ReplicaHandle {
        ReplicaHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The replica's durability directory.
    pub fn dir(&self) -> PathBuf {
        self.shared.dir.clone()
    }

    /// Snapshots the replica's progress counters.
    pub fn stats(&self) -> ReplicaStats {
        self.shared.stats()
    }

    /// Graceful stop: the apply loop exits, the WAL tail is fsync'd and
    /// a final snapshot is published — the durable seal promotion
    /// requires. Returns the final stats.
    pub fn shutdown(mut self) -> ReplicaStats {
        self.shared.graceful.store(true, Ordering::Release);
        self.stop();
        self.shared.stats()
    }

    /// Crash stop: the apply loop exits without the final sync or
    /// snapshot, modelling a process kill (writes already handed to the
    /// OS survive; everything else is for recovery to sort out).
    pub fn kill(mut self) -> ReplicaStats {
        self.stop();
        self.shared.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Wipes replication artefacts from the replica dir (before installing
/// a bootstrap snapshot that supersedes whatever was there).
fn wipe_dir(dir: &Path) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") || name.starts_with("snap-") || name == MANIFEST_NAME {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Recovers replica state from its own dir: newest decodable snapshot,
/// pending applied in order, then the WAL tail replayed **per record**
/// (not register-collapsed — the store must land exactly where
/// sequential application of the primary's prefix lands it).
fn recover_local(dir: &Path) -> io::Result<Option<(Store, u64)>> {
    if !dir.join(MANIFEST_NAME).exists() {
        return Ok(None);
    }
    let mut snap = None;
    for (_, path) in snapshot::snapshot_files(dir)? {
        let bytes = std::fs::read(&path)?;
        if let Ok(s) = snapshot::decode_snapshot(&bytes) {
            snap = Some(s);
            break;
        }
    }
    let Some(snap) = snap else { return Ok(None) };
    let mut store = snap.store;
    for trade in &snap.pending {
        store.apply_update(trade);
    }
    let mut applied = snap.last_lsn;
    let replay = wal::replay_dir(dir, snap.last_lsn)?;
    for frame in &replay.records {
        if let Some(trade) = wal::decode_trade(&frame.payload) {
            store.apply_update(&trade);
        }
        applied = frame.lsn;
    }
    Ok(Some((store, applied)))
}

fn replica_main(primary: SocketAddr, config: ReplicaConfig, shared: Arc<SharedState>) {
    let epoch = shared.epoch;
    let mut wal: Option<Wal> = None;

    // Local recovery: a restarted replica resumes from its own state
    // instead of re-bootstrapping.
    match recover_local(&shared.dir) {
        Ok(Some((store, applied))) => {
            let n = store.len();
            {
                let mut data = shared.data.lock().expect("replica data lock");
                data.store = Some(store);
                data.tracker = StalenessTracker::new(n);
            }
            shared.applied.store(applied, Ordering::Release);
            shared.durable.store(applied, Ordering::Release);
            shared.ready.store(true, Ordering::Release);
            match Wal::create(&shared.dir, config.fsync, config.segment_bytes, applied + 1) {
                Ok(w) => wal = Some(w),
                Err(_) => return,
            }
        }
        Ok(None) => {}
        Err(_) => {}
    }

    let mut backoff = Backoff::new(config.backoff_base, config.backoff_cap);
    while !shared.shutdown.load(Ordering::Acquire) {
        let stream = match TcpStream::connect_timeout(&primary, Duration::from_millis(250)) {
            Ok(s) => s,
            Err(_) => {
                thread::sleep(backoff.next_sleep());
                continue;
            }
        };
        shared.connections.fetch_add(1, Ordering::AcqRel);
        shared.connected.store(true, Ordering::Release);
        let before = shared.applied.load(Ordering::Acquire);
        let outcome = replica_session(stream, &config, &shared, &mut wal, epoch);
        shared.connected.store(false, Ordering::Release);
        // A session that advanced the log was healthy, whatever ended
        // it: restart the backoff streak. Fruitless sessions escalate
        // it, so a dead primary isn't hammered.
        if shared.applied.load(Ordering::Acquire) > before {
            backoff.reset();
        }
        if outcome.is_err() {
            thread::sleep(backoff.next_sleep());
        }
    }

    if shared.graceful.load(Ordering::Acquire) {
        // Durable seal: fsync the tail and publish a covering snapshot,
        // so promotion recovers the full applied prefix with no replay
        // ambiguity.
        if let Some(w) = wal.as_mut() {
            if w.sync().is_ok() {
                shared
                    .durable
                    .store(shared.applied.load(Ordering::Acquire), Ordering::Release);
            }
            let data = shared.data.lock().expect("replica data lock");
            if let Some(store) = data.store.as_ref() {
                let applied = shared.applied.load(Ordering::Acquire);
                if w.rotate().is_ok()
                    && snapshot::publish(
                        &shared.dir,
                        store,
                        data.tracker.missed_counts(),
                        &[],
                        applied,
                    )
                    .is_ok()
                {
                    shared.snapshots.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }
}

/// One shipping session: handshake, optional bootstrap, apply loop.
/// `Ok(())` is a clean exit (shutdown); `Err` means reconnect.
fn replica_session(
    mut stream: TcpStream,
    config: &ReplicaConfig,
    shared: &SharedState,
    wal: &mut Option<Wal>,
    epoch: Instant,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let resume = shared.applied.load(Ordering::Acquire);
    let my_term = shared.term.load(Ordering::Acquire);
    wire::send_hello(&mut stream, &config.name, resume, my_term)?;

    // The primary's first bytes are its term announcement. Fencing
    // happens here, before any preamble is trusted: a primary behind
    // our persisted term is a zombie and nothing it sends — snapshot,
    // frame or heartbeat — may touch local state.
    if wire::read_u8(&mut stream)? != wire::TAG_TERM {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "primary did not announce its term",
        ));
    }
    let session_term = wire::read_u64(&mut stream)?;
    if session_term < my_term {
        shared.fenced.fetch_add(1, Ordering::AcqRel);
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!("fenced: primary at stale term {session_term}, ours is {my_term}"),
        ));
    }
    shared.term.store(session_term, Ordering::Release);

    // A tracing primary announces its seed before the bootstrap
    // preamble; a silent one goes straight to it. Both are accepted.
    let mut tag = wire::read_u8(&mut stream)?;
    if tag == wire::TAG_TRACE {
        let seed = wire::read_u64(&mut stream)?;
        shared.trace_seed.store(seed, Ordering::Release);
        shared.trace_seed_set.store(true, Ordering::Release);
        tag = wire::read_u8(&mut stream)?;
    }
    match tag {
        wire::TAG_SNAP => {
            let len = wire::read_u64(&mut stream)?;
            if len > wire::MAX_SNAPSHOT {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bootstrap snapshot implausibly large",
                ));
            }
            let mut bytes = vec![0u8; len as usize];
            stream.read_exact(&mut bytes)?;
            let snap = snapshot::decode_snapshot(&bytes)?;
            install_snapshot(config, shared, wal, snap)?;
        }
        wire::TAG_RESUME => {
            if wal.is_none() {
                // The primary agreed to resume but we have no baseline
                // store — protocol violation, don't guess.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "resume offered to a replica with no local state",
                ));
            }
        }
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected preamble tag from primary",
            ));
        }
    }

    // The adopted term goes durable before the first ack under it: a
    // restart must never hello with a term lower than one it acked in,
    // or a zombie could slip past the fence. Checked against the *on
    // disk* term (not `my_term`) because a bootstrap just rewrote the
    // manifest from scratch.
    if session_term > 0 {
        snapshot::bump_term(&shared.dir, session_term)?;
    }

    // Apply loop. Reads are timeout-bounded so shutdown stays prompt.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut since_ack = 0u64;
    let mut since_snapshot = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            ack_now(&mut stream, shared, wal).ok();
            return Ok(());
        }
        match wire::read_u8(&mut stream) {
            Ok(wire::TAG_FRAME) => {
                let (frame_term, frame) = read_frame(&mut stream)?;
                if frame_term != session_term {
                    // A frame from another term on a session fenced to
                    // this one: reject it before it touches anything.
                    shared.fenced.fetch_add(1, Ordering::AcqRel);
                    return Err(io::Error::new(
                        io::ErrorKind::PermissionDenied,
                        format!("fenced: frame term {frame_term} on term-{session_term} session"),
                    ));
                }
                shared.note_beat();
                shared.primary.fetch_max(frame.lsn, Ordering::AcqRel);
                let applied = shared.applied.load(Ordering::Acquire);
                if frame.lsn <= applied {
                    shared.duplicates.fetch_add(1, Ordering::AcqRel);
                    continue;
                }
                if frame.lsn > applied + 1 {
                    // A hole (dropped frame / missed history): resuming
                    // from `applied` is the only safe continuation.
                    shared.gaps.fetch_add(1, Ordering::AcqRel);
                    ack_now(&mut stream, shared, wal).ok();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "LSN gap in shipped stream",
                    ));
                }
                apply_frame(shared, wal, &frame, epoch)?;
                since_ack += 1;
                since_snapshot += 1;
                if since_ack >= config.ack_every {
                    ack_now(&mut stream, shared, wal)?;
                    since_ack = 0;
                }
                if since_snapshot >= config.snapshot_every {
                    publish_local_snapshot(shared, wal)?;
                    since_snapshot = 0;
                }
            }
            Ok(wire::TAG_HEARTBEAT) => {
                let watermark = wire::read_u64(&mut stream)?;
                shared.note_beat();
                shared.primary.fetch_max(watermark, Ordering::AcqRel);
                ack_now(&mut stream, shared, wal)?;
                since_ack = 0;
            }
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected stream tag from primary",
                ));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle: make buffered progress durable and report it.
                if since_ack > 0 {
                    ack_now(&mut stream, shared, wal)?;
                    since_ack = 0;
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Installs a bootstrap snapshot: the snapshot's store with its pending
/// tail applied in order *is* the sequential state at `last_lsn`. The
/// local dir is re-seeded so recovery and promotion see a normal
/// `snapshot + WAL` layout.
fn install_snapshot(
    config: &ReplicaConfig,
    shared: &SharedState,
    wal: &mut Option<Wal>,
    snap: snapshot::Snapshot,
) -> io::Result<()> {
    // Close any open WAL before deleting its files out from under it.
    *wal = None;
    wipe_dir(&shared.dir)?;
    let mut store = snap.store;
    for trade in &snap.pending {
        store.apply_update(trade);
    }
    let n = store.len();
    snapshot::publish(&shared.dir, &store, &vec![0; n], &[], snap.last_lsn)?;
    *wal = Some(Wal::create(
        &shared.dir,
        config.fsync,
        config.segment_bytes,
        snap.last_lsn + 1,
    )?);
    {
        let mut data = shared.data.lock().expect("replica data lock");
        data.store = Some(store);
        data.tracker = StalenessTracker::new(n);
    }
    shared.applied.store(snap.last_lsn, Ordering::Release);
    shared.durable.store(snap.last_lsn, Ordering::Release);
    shared.primary.fetch_max(snap.last_lsn, Ordering::AcqRel);
    shared.bootstraps.fetch_add(1, Ordering::AcqRel);
    shared.ready.store(true, Ordering::Release);
    Ok(())
}

/// Reads one shipped WAL frame — its leading term, then the on-disk
/// frame bytes — and CRC-checks it with the same decoder replay uses.
/// The reads after the tag get a generous timeout (a stalled half-frame
/// is a link failure, handled by reconnect).
fn read_frame(stream: &mut TcpStream) -> io::Result<(u64, Frame)> {
    let mut header = [0u8; wal::FRAME_HEADER];
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let result = (|| {
        let term = wire::read_u64(stream)?;
        stream.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        if len > wal::MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shipped frame payload implausibly large",
            ));
        }
        let mut buf = Vec::with_capacity(wal::FRAME_HEADER + len);
        buf.extend_from_slice(&header);
        buf.resize(wal::FRAME_HEADER + len, 0);
        stream.read_exact(&mut buf[wal::FRAME_HEADER..])?;
        match wal::decode_frame(&buf, 0) {
            Ok(Some((frame, _))) => Ok((term, frame)),
            Ok(None) | Err(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shipped frame failed CRC/length validation",
            )),
        }
    })();
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    result
}

/// Applies one in-order frame: append to the local WAL (byte-identical,
/// same LSN), then run it through the store + staleness tracker.
///
/// The append is **deferred** — no per-frame fsync. The received group
/// (everything since the last ack) becomes durable with the single sync
/// [`ack_now`] issues before reporting `durable_lsn`, so the replica
/// amortizes its commit cost exactly like the primary's group-commit
/// leader, and a mid-group disconnect can never have acked an unsynced
/// prefix.
fn apply_frame(
    shared: &SharedState,
    wal: &mut Option<Wal>,
    frame: &Frame,
    epoch: Instant,
) -> io::Result<()> {
    let w = wal
        .as_mut()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame before any baseline"))?;
    let lsn = w.append_deferred(&frame.payload)?;
    debug_assert_eq!(lsn, frame.lsn, "replica WAL diverged from stream LSNs");
    {
        let mut data = shared.data.lock().expect("replica data lock");
        if let Some(trade) = wal::decode_trade(&frame.payload) {
            let now_us = epoch.elapsed().as_micros() as u64;
            data.tracker.on_arrival(trade.stock, now_us);
            if let Some(store) = data.store.as_mut() {
                store.apply_update(&trade);
            }
            data.tracker.on_apply(trade.stock);
        }
    }
    shared.applied.store(frame.lsn, Ordering::Release);
    shared.frames_applied.fetch_add(1, Ordering::AcqRel);
    if let (Some(ring), true) = (&shared.ring, shared.trace_seed_set.load(Ordering::Acquire)) {
        // Timestamped with the LSN (logical time), so same-seed runs
        // export byte-identical replica trace JSONL.
        let seed = shared.trace_seed.load(Ordering::Acquire);
        let ctx = TraceCtx::root(update_trace_id(seed, frame.lsn)).child(SPAN_APPLY);
        ring.lock().push(
            frame.lsn,
            TraceEvent::ReplicaApply {
                ctx,
                lsn: frame.lsn,
            },
        );
    }
    Ok(())
}

/// Syncs the local WAL, then acks. The sync-before-ack order is the
/// durability contract: an acked LSN is never lost to a replica crash.
fn ack_now(stream: &mut TcpStream, shared: &SharedState, wal: &mut Option<Wal>) -> io::Result<()> {
    let applied = shared.applied.load(Ordering::Acquire);
    if let Some(w) = wal.as_mut() {
        if applied > shared.durable.load(Ordering::Acquire) {
            w.sync()?;
            shared.durable.store(applied, Ordering::Release);
        }
    }
    let uu = {
        let data = shared.data.lock().expect("replica data lock");
        data.tracker.total_unapplied()
    };
    wire::send_ack(
        stream,
        Ack {
            applied_lsn: applied,
            durable_lsn: shared.durable.load(Ordering::Acquire),
            uu,
            term: shared.term.load(Ordering::Acquire),
        },
    )
}

/// Rotates the local WAL and publishes a covering snapshot, mirroring
/// the primary's cadence so old replica segments stay collectable.
fn publish_local_snapshot(shared: &SharedState, wal: &mut Option<Wal>) -> io::Result<()> {
    let Some(w) = wal.as_mut() else { return Ok(()) };
    let applied = shared.applied.load(Ordering::Acquire);
    w.rotate()?;
    shared.durable.store(applied, Ordering::Release);
    let data = shared.data.lock().expect("replica data lock");
    let Some(store) = data.store.as_ref() else {
        return Ok(());
    };
    snapshot::publish(
        &shared.dir,
        store,
        data.tracker.missed_counts(),
        &[],
        applied,
    )?;
    drop(data);
    shared.snapshots.fetch_add(1, Ordering::AcqRel);
    Ok(())
}
