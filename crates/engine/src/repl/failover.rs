//! Failover: promoting a replica to primary.
//!
//! Promotion is deliberately boring — that is the point. A replica's
//! directory is kept in the exact `snapshot + WAL` layout the engine's
//! own recovery consumes, so promoting one is: seal it (graceful
//! shutdown fsyncs the WAL tail and publishes a covering snapshot —
//! nothing the replica ever acked can be lost past this line), then run
//! [`Engine::recover`] over its directory. The promoted engine answers
//! no client until that recovery completes, which is the "refuse to ack
//! until the WAL tail is durable" rule in mechanism form.

use crate::config::EngineConfig;
use crate::repl::replica::Replica;
use crate::runtime::Engine;
use std::io;

/// Promotes one replica: seals its state (graceful shutdown) and
/// recovers a primary engine from its directory. The returned engine
/// continues the LSN sequence the replica applied.
pub fn promote(replica: Replica, config: EngineConfig) -> io::Result<Engine> {
    let dir = replica.dir();
    let stats = replica.shutdown();
    if !stats.ready {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "replica was never bootstrapped; nothing to promote",
        ));
    }
    Engine::recover(dir, config)
}

/// Promotes the replica with the highest `applied_lsn` — the standard
/// "most caught-up survivor wins" election — and returns the new
/// primary plus the replicas that were passed over (still running,
/// ready to re-point at the new primary's shipper).
pub fn promote_highest(
    replicas: Vec<Replica>,
    config: EngineConfig,
) -> io::Result<(Engine, Vec<Replica>)> {
    let winner = replicas
        .iter()
        .enumerate()
        .filter(|(_, r)| r.stats().ready)
        .max_by_key(|(_, r)| r.stats().applied_lsn)
        .map(|(i, _)| i)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                "no bootstrapped replica to promote",
            )
        })?;
    let mut rest = replicas;
    let chosen = rest.remove(winner);
    let engine = promote(chosen, config)?;
    Ok((engine, rest))
}
