//! Failover: promoting a replica to primary.
//!
//! Promotion is deliberately boring — that is the point. A replica's
//! directory is kept in the exact `snapshot + WAL` layout the engine's
//! own recovery consumes, so promoting one is: seal it (graceful
//! shutdown fsyncs the WAL tail and publishes a covering snapshot —
//! nothing the replica ever acked can be lost past this line), bump the
//! fencing term in its MANIFEST, then run [`Engine::recover`] over its
//! directory. The promoted engine answers no client until that recovery
//! completes, which is the "refuse to ack until the WAL tail is
//! durable" rule in mechanism form.
//!
//! Elections pick the replica with the highest **durable** LSN: what a
//! replica fsync'd is what it acked, and zero-acked-loss promotion is a
//! statement about acks, not about frames that only ever reached a page
//! cache.
//!
//! Term-aware promotion ([`promote_at_term`]) is idempotent in the only
//! sense that matters for split-brain: promoting twice at the same term
//! fails with [`PromoteError::StaleTerm`] on the second attempt, so at
//! most one primary can ever hold a given term.

use crate::config::EngineConfig;
use crate::repl::replica::Replica;
use crate::runtime::Engine;
use quts_db::snapshot;
use std::fmt;
use std::io;

/// Why a promotion was refused or failed.
#[derive(Debug)]
pub enum PromoteError {
    /// The chosen replica was never bootstrapped: it has no baseline
    /// store, so there is nothing coherent to promote.
    NotBootstrapped,
    /// No replica in the candidate set was bootstrapped.
    NoCandidate,
    /// The directory has already seen `current >= requested`: someone
    /// promoted at this term (or a later one) first. The refusing
    /// caller must not serve — this is the at-most-one-primary-per-term
    /// guarantee in error form.
    StaleTerm {
        /// The term already persisted in the directory's MANIFEST.
        current: u64,
        /// The term the caller asked to promote at.
        requested: u64,
    },
    /// Sealing, term persistence, or engine recovery failed.
    Io(io::Error),
}

impl fmt::Display for PromoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromoteError::NotBootstrapped => {
                write!(f, "replica was never bootstrapped; nothing to promote")
            }
            PromoteError::NoCandidate => write!(f, "no bootstrapped replica to promote"),
            PromoteError::StaleTerm { current, requested } => write!(
                f,
                "promotion at term {requested} refused: directory already at term {current}"
            ),
            PromoteError::Io(e) => write!(f, "promotion failed: {e}"),
        }
    }
}

impl std::error::Error for PromoteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PromoteError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PromoteError {
    fn from(e: io::Error) -> Self {
        PromoteError::Io(e)
    }
}

/// Promotes one replica: seals its state (graceful shutdown) and
/// recovers a primary engine from its directory, preserving whatever
/// term the directory already carries. The returned engine continues
/// the LSN sequence the replica applied.
pub fn promote(replica: Replica, config: EngineConfig) -> Result<Engine, PromoteError> {
    let dir = replica.dir();
    let stats = replica.shutdown();
    if !stats.ready {
        return Err(PromoteError::NotBootstrapped);
    }
    Ok(Engine::recover(dir, config)?)
}

/// Promotes one replica *at a new term*: seals it, refuses if the
/// directory has already reached `term` (a concurrent or repeated
/// promotion — the loser must stand down, not serve), persists the term
/// bump, then recovers the engine.
pub fn promote_at_term(
    replica: Replica,
    config: EngineConfig,
    term: u64,
) -> Result<Engine, PromoteError> {
    let dir = replica.dir();
    let stats = replica.shutdown();
    if !stats.ready {
        return Err(PromoteError::NotBootstrapped);
    }
    let current = snapshot::manifest_term(&dir);
    if current >= term {
        return Err(PromoteError::StaleTerm {
            current,
            requested: term,
        });
    }
    snapshot::bump_term(&dir, term)?;
    Ok(Engine::recover(dir, config)?)
}

/// Picks the index of the most-durable bootstrapped replica.
pub(crate) fn elect(replicas: &[Replica]) -> Result<usize, PromoteError> {
    replicas
        .iter()
        .enumerate()
        .filter(|(_, r)| r.stats().ready)
        .max_by_key(|(_, r)| r.stats().durable_lsn)
        .map(|(i, _)| i)
        .ok_or(PromoteError::NoCandidate)
}

/// Promotes the replica with the highest **durable** LSN — what was
/// fsync'd is what was acked, so the winner carries every
/// acked-durable update — and returns the new primary plus the
/// replicas that were passed over (still running, ready to re-point at
/// the new primary's shipper).
pub fn promote_highest(
    replicas: Vec<Replica>,
    config: EngineConfig,
) -> Result<(Engine, Vec<Replica>), PromoteError> {
    let winner = elect(&replicas)?;
    let mut rest = replicas;
    let chosen = rest.remove(winner);
    let engine = promote(chosen, config)?;
    Ok((engine, rest))
}

/// [`promote_highest`], fenced at a new term (see [`promote_at_term`]).
pub fn promote_highest_at_term(
    replicas: Vec<Replica>,
    config: EngineConfig,
    term: u64,
) -> Result<(Engine, Vec<Replica>), PromoteError> {
    let winner = elect(&replicas)?;
    let mut rest = replicas;
    let chosen = rest.remove(winner);
    let engine = promote_at_term(chosen, config, term)?;
    Ok((engine, rest))
}
