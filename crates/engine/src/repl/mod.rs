//! Staleness-aware WAL replication.
//!
//! This module turns the single-node engine into a replicated read
//! farm without weakening any promise the WAL already makes:
//!
//! - **[`ShipListener`]** (primary side) streams the durability
//!   directory's WAL over TCP — the exact CRC'd frames on disk — with
//!   resume-from-any-LSN, snapshot bootstrap for newcomers, and
//!   injectable link faults ([`LinkFaultPlan`]) for chaos tests.
//! - **[`Replica`]** applies the stream in strict LSN order through
//!   register-table semantics, maintains its own durable WAL +
//!   snapshots (byte-identical prefix of the primary's log), and
//!   reports `applied_lsn` / `durable_lsn` / `#uu` upstream. Acks are
//!   sync-first: an acked LSN survives a replica crash.
//! - **[`Router`]** sends each read to the cheapest node whose
//!   staleness bound still earns the query's full QoD profit, with
//!   lag-hysteresis health demotion and the bounded degradation ladder
//!   *replica → primary → `ERR busy`*.
//! - **[`promote`] / [`promote_highest`]** implement failover: seal the
//!   most caught-up replica and recover a primary engine from its
//!   directory. Their term-aware forms ([`promote_at_term`] /
//!   [`promote_highest_at_term`]) fence the promotion: at most one
//!   primary per term, enforced by the MANIFEST.
//! - **[`Cluster`]** closes the loop: a controller that detects a lost
//!   primary (crash or partition), promotes by highest *durable* LSN
//!   at a bumped term, re-ships behind a term floor and re-points the
//!   router — zero-acked-loss autopilot failover.
//!
//! [`LinkFaultPlan`]: crate::fault::LinkFaultPlan

mod controller;
mod failover;
mod replica;
mod router;
mod ship;
mod wire;

pub use controller::{
    Cluster, ClusterHandle, ClusterStats, ControllerConfig, FailoverReport, FailureVerdict,
};
pub use failover::{
    promote, promote_at_term, promote_highest, promote_highest_at_term, PromoteError,
};
pub use replica::{Replica, ReplicaConfig, ReplicaHandle, ReplicaStats};
pub use router::{RoutedReadError, Router, RouterConfig, RouterStats};
pub use ship::{ReplicaPeerStats, ShipConfig, ShipListener, ShipRegistry, ShipTrace};
