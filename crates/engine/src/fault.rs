//! Deterministic fault injection for the live engine.
//!
//! A [`FaultPlan`] rides on [`EngineConfig`](crate::EngineConfig) and
//! lets tests provoke the failure modes the engine must survive:
//! scheduler panics, per-transaction stalls, self-inflicted update-feed
//! bursts, and dropped reply channels. The plan is pure configuration;
//! the mutable progress counters live in [`FaultState`] so they survive
//! supervisor restarts (a "panic after N transactions" fault fires once
//! per engine, not once per incarnation).
//!
//! Production engines run with the default (empty) plan, which injects
//! nothing and costs one relaxed atomic increment per transaction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A self-inflicted burst of synthetic updates, emulating a hot feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateBurst {
    /// Inject a burst every this many executed transactions.
    pub every_txns: u64,
    /// Number of synthetic updates per burst.
    pub size: u32,
}

/// What to break, and when. The default plan breaks nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Panic the scheduler thread once, right before executing the N-th
    /// transaction.
    pub panic_after_txns: Option<u64>,
    /// Busy-spin this long before every transaction (emulates a slow
    /// operator or a stalled page).
    pub stall_per_txn: Option<Duration>,
    /// Drop (never send) every k-th query reply, leaving the client with
    /// a disconnected channel instead of an answer.
    pub drop_reply_every: Option<u64>,
    /// Periodically flood the update queue with synthetic trades.
    pub update_burst: Option<UpdateBurst>,
}

impl FaultPlan {
    /// Builder: panic once before the `n`-th transaction.
    pub fn panic_after(mut self, n: u64) -> Self {
        self.panic_after_txns = Some(n);
        self
    }

    /// Builder: stall before every transaction.
    pub fn stall_per_txn(mut self, stall: Duration) -> Self {
        self.stall_per_txn = Some(stall);
        self
    }

    /// Builder: drop every `k`-th query reply.
    pub fn drop_reply_every(mut self, k: u64) -> Self {
        assert!(k > 0, "drop_reply_every(0) is meaningless");
        self.drop_reply_every = Some(k);
        self
    }

    /// Builder: inject `size` synthetic updates every `every_txns`
    /// transactions.
    pub fn update_burst(mut self, every_txns: u64, size: u32) -> Self {
        assert!(every_txns > 0, "update_burst period must be positive");
        self.update_burst = Some(UpdateBurst { every_txns, size });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Mutable fault progress, shared across supervisor restarts.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Transactions executed over the engine's whole life.
    txns: AtomicU64,
    /// Whether the one-shot injected panic already fired.
    panic_fired: AtomicBool,
    /// Query replies produced over the engine's whole life.
    replies: AtomicU64,
}

impl FaultState {
    /// Counts one transaction; returns its 1-based global index.
    pub(crate) fn next_txn(&self) -> u64 {
        self.txns.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether the one-shot panic should fire for transaction `txn`
    /// under `plan` (true exactly once per engine).
    pub(crate) fn should_panic(&self, plan: &FaultPlan, txn: u64) -> bool {
        match plan.panic_after_txns {
            Some(at) if txn >= at => !self.panic_fired.swap(true, Ordering::Relaxed),
            _ => false,
        }
    }

    /// Counts one reply; true when `plan` says this one must be dropped.
    pub(crate) fn should_drop_reply(&self, plan: &FaultPlan) -> bool {
        match plan.drop_reply_every {
            Some(k) => (self.replies.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(k),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        assert!(FaultPlan::default().is_noop());
        assert!(!FaultPlan::default().panic_after(3).is_noop());
    }

    #[test]
    fn panic_fires_exactly_once() {
        let plan = FaultPlan::default().panic_after(3);
        let state = FaultState::default();
        assert!(!state.should_panic(&plan, 1));
        assert!(!state.should_panic(&plan, 2));
        assert!(state.should_panic(&plan, 3));
        assert!(!state.should_panic(&plan, 4), "one-shot");
    }

    #[test]
    fn reply_drops_follow_the_period() {
        let plan = FaultPlan::default().drop_reply_every(3);
        let state = FaultState::default();
        let drops: Vec<bool> = (0..6).map(|_| state.should_drop_reply(&plan)).collect();
        assert_eq!(drops, [false, false, true, false, false, true]);
    }

    #[test]
    fn txn_counter_is_monotonic() {
        let state = FaultState::default();
        assert_eq!(state.next_txn(), 1);
        assert_eq!(state.next_txn(), 2);
    }
}
