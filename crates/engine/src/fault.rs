//! Deterministic fault injection for the live engine.
//!
//! A [`FaultPlan`] rides on [`EngineConfig`](crate::EngineConfig) and
//! lets tests provoke the failure modes the engine must survive:
//! scheduler panics, per-transaction stalls, self-inflicted update-feed
//! bursts, and dropped reply channels. The plan is pure configuration;
//! the mutable progress counters live in [`FaultState`] so they survive
//! supervisor restarts (a "panic after N transactions" fault fires once
//! per engine, not once per incarnation).
//!
//! Production engines run with the default (empty) plan, which injects
//! nothing and costs one relaxed atomic increment per transaction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A self-inflicted burst of synthetic updates, emulating a hot feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateBurst {
    /// Inject a burst every this many executed transactions.
    pub every_txns: u64,
    /// Number of synthetic updates per burst.
    pub size: u32,
}

/// Replication-link fault injection, applied by the primary's WAL
/// shipper to each outbound frame. Unlike the one-shot WAL faults these
/// are *periodic* — a flaky link stays flaky — and the counters are
/// per-connection (kept by the shipper), so every reconnect faces the
/// same link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultPlan {
    /// Silently drop every `k`-th shipped frame. The receiver sees an
    /// LSN gap and must reconnect with resume-from-LSN.
    pub drop_frame_every: Option<u64>,
    /// Ship every `k`-th frame twice. The receiver must deduplicate by
    /// LSN, never double-apply.
    pub duplicate_frame_every: Option<u64>,
    /// Sleep this long before every shipped frame (link latency; drives
    /// replica lag and demotion).
    pub delay_per_frame: Option<Duration>,
    /// On every `k`-th frame, write only half the frame and drop the
    /// connection — a mid-frame disconnect the receiver must survive.
    pub disconnect_mid_frame_every: Option<u64>,
    /// After the `n`-th frame the link goes dark: every later frame is
    /// silently dropped **and heartbeats stop**, while the TCP
    /// connection stays open — a network partition, not a crash. The
    /// receiver sees silence (no gap, no reset) and the failure
    /// detector must tell this apart from a dead primary.
    pub partition_after: Option<u64>,
}

impl LinkFaultPlan {
    /// Builder: drop every `k`-th shipped frame.
    pub fn drop_frame_every(mut self, k: u64) -> Self {
        assert!(k > 0, "drop_frame_every(0) is meaningless");
        self.drop_frame_every = Some(k);
        self
    }

    /// Builder: duplicate every `k`-th shipped frame.
    pub fn duplicate_frame_every(mut self, k: u64) -> Self {
        assert!(k > 0, "duplicate_frame_every(0) is meaningless");
        self.duplicate_frame_every = Some(k);
        self
    }

    /// Builder: delay every shipped frame.
    pub fn delay_per_frame(mut self, delay: Duration) -> Self {
        self.delay_per_frame = Some(delay);
        self
    }

    /// Builder: disconnect mid-frame on every `k`-th frame.
    pub fn disconnect_mid_frame_every(mut self, k: u64) -> Self {
        assert!(k > 0, "disconnect_mid_frame_every(0) is meaningless");
        self.disconnect_mid_frame_every = Some(k);
        self
    }

    /// Builder: black-hole the link (frames and heartbeats) after the
    /// `n`-th frame while keeping the connection open.
    pub fn partition_after(mut self, n: u64) -> Self {
        self.partition_after = Some(n);
        self
    }
}

/// What to break, and when. The default plan breaks nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Panic the scheduler thread once, right before executing the N-th
    /// transaction.
    pub panic_after_txns: Option<u64>,
    /// Busy-spin this long before every transaction (emulates a slow
    /// operator or a stalled page).
    pub stall_per_txn: Option<Duration>,
    /// Drop (never send) every k-th query reply, leaving the client with
    /// a disconnected channel instead of an answer.
    pub drop_reply_every: Option<u64>,
    /// Periodically flood the update queue with synthetic trades.
    pub update_burst: Option<UpdateBurst>,

    // --- WAL IO faults (meaningful only with durability enabled) ---
    /// Fail the N-th WAL append outright (nothing written). The engine
    /// fail-stops: the scheduler panics and recovery takes over.
    pub wal_fail_append: Option<u64>,
    /// Short-write the N-th WAL append (header lands, payload does
    /// not) — the residue of a crash mid-write. Fail-stop.
    pub wal_torn_append: Option<u64>,
    /// Corrupt the N-th appended record on disk *silently* — the engine
    /// carries on; only replay's CRC detects it.
    pub wal_corrupt_append: Option<u64>,
    /// Fail the fsync of the N-th WAL append. Durability of the record
    /// is unknown, so the engine fail-stops (PANIC-on-fsync).
    pub wal_fsync_fail: Option<u64>,
    /// Report the disk full (ENOSPC) on the N-th WAL append: nothing is
    /// written, the error is permanent-looking, and the engine must
    /// fail-stop rather than ack an update it cannot make durable.
    pub wal_enospc: Option<u64>,

    // --- Replication-link faults (meaningful only with a shipper) ---
    /// Faults the primary's WAL shipper injects into every replica link.
    pub link: Option<LinkFaultPlan>,
}

/// Which injected WAL fault fires on an append (one-shot each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalFault {
    /// Append fails before writing.
    Fail,
    /// Append short-writes the frame.
    Torn,
    /// Append writes a corrupted record and reports success.
    Corrupt,
    /// Append lands but its fsync fails.
    FsyncFail,
    /// The disk is full: nothing written, nothing durable.
    Enospc,
}

impl FaultPlan {
    /// Builder: panic once before the `n`-th transaction.
    pub fn panic_after(mut self, n: u64) -> Self {
        self.panic_after_txns = Some(n);
        self
    }

    /// Builder: stall before every transaction.
    pub fn stall_per_txn(mut self, stall: Duration) -> Self {
        self.stall_per_txn = Some(stall);
        self
    }

    /// Builder: drop every `k`-th query reply.
    pub fn drop_reply_every(mut self, k: u64) -> Self {
        assert!(k > 0, "drop_reply_every(0) is meaningless");
        self.drop_reply_every = Some(k);
        self
    }

    /// Builder: inject `size` synthetic updates every `every_txns`
    /// transactions.
    pub fn update_burst(mut self, every_txns: u64, size: u32) -> Self {
        assert!(every_txns > 0, "update_burst period must be positive");
        self.update_burst = Some(UpdateBurst { every_txns, size });
        self
    }

    /// Builder: fail the `n`-th WAL append outright.
    pub fn wal_fail_append(mut self, n: u64) -> Self {
        assert!(n > 0, "WAL appends are 1-based");
        self.wal_fail_append = Some(n);
        self
    }

    /// Builder: short-write the `n`-th WAL append.
    pub fn wal_torn_append(mut self, n: u64) -> Self {
        assert!(n > 0, "WAL appends are 1-based");
        self.wal_torn_append = Some(n);
        self
    }

    /// Builder: silently corrupt the `n`-th appended record.
    pub fn wal_corrupt_append(mut self, n: u64) -> Self {
        assert!(n > 0, "WAL appends are 1-based");
        self.wal_corrupt_append = Some(n);
        self
    }

    /// Builder: fail the fsync of the `n`-th WAL append.
    pub fn wal_fsync_fail(mut self, n: u64) -> Self {
        assert!(n > 0, "WAL appends are 1-based");
        self.wal_fsync_fail = Some(n);
        self
    }

    /// Builder: report ENOSPC (disk full) on the `n`-th WAL append.
    pub fn wal_enospc(mut self, n: u64) -> Self {
        assert!(n > 0, "WAL appends are 1-based");
        self.wal_enospc = Some(n);
        self
    }

    /// Builder: inject replication-link faults into the WAL shipper.
    pub fn link(mut self, link: LinkFaultPlan) -> Self {
        self.link = Some(link);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Mutable fault progress, shared across supervisor restarts.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Transactions executed over the engine's whole life.
    txns: AtomicU64,
    /// Whether the one-shot injected panic already fired.
    panic_fired: AtomicBool,
    /// Query replies produced over the engine's whole life.
    replies: AtomicU64,
    /// WAL appends attempted over the engine's whole life.
    wal_appends: AtomicU64,
    /// One-shot flags, one per WAL fault kind.
    wal_fail_fired: AtomicBool,
    wal_torn_fired: AtomicBool,
    wal_corrupt_fired: AtomicBool,
    wal_fsync_fired: AtomicBool,
    wal_enospc_fired: AtomicBool,
}

impl FaultState {
    /// Counts one transaction; returns its 1-based global index.
    pub(crate) fn next_txn(&self) -> u64 {
        self.txns.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether the one-shot panic should fire for transaction `txn`
    /// under `plan` (true exactly once per engine).
    pub(crate) fn should_panic(&self, plan: &FaultPlan, txn: u64) -> bool {
        match plan.panic_after_txns {
            Some(at) if txn >= at => !self.panic_fired.swap(true, Ordering::Relaxed),
            _ => false,
        }
    }

    /// Counts one reply; true when `plan` says this one must be dropped.
    pub(crate) fn should_drop_reply(&self, plan: &FaultPlan) -> bool {
        match plan.drop_reply_every {
            Some(k) => (self.replies.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(k),
            None => false,
        }
    }

    /// Counts one WAL append; returns its 1-based global index (the
    /// counter survives restarts, so "fault the N-th append" fires once
    /// per engine).
    pub(crate) fn next_wal_append(&self) -> u64 {
        self.wal_appends.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The injected WAL fault for append number `n`, if any fires now.
    /// Each fault kind is one-shot; on a tie the most destructive wins
    /// (enospc > fail > torn > fsync > corrupt).
    pub(crate) fn wal_fault(&self, plan: &FaultPlan, n: u64) -> Option<WalFault> {
        let fire = |at: Option<u64>, flag: &AtomicBool| match at {
            Some(at) if n >= at => !flag.swap(true, Ordering::Relaxed),
            _ => false,
        };
        if fire(plan.wal_enospc, &self.wal_enospc_fired) {
            Some(WalFault::Enospc)
        } else if fire(plan.wal_fail_append, &self.wal_fail_fired) {
            Some(WalFault::Fail)
        } else if fire(plan.wal_torn_append, &self.wal_torn_fired) {
            Some(WalFault::Torn)
        } else if fire(plan.wal_fsync_fail, &self.wal_fsync_fired) {
            Some(WalFault::FsyncFail)
        } else if fire(plan.wal_corrupt_append, &self.wal_corrupt_fired) {
            Some(WalFault::Corrupt)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        assert!(FaultPlan::default().is_noop());
        assert!(!FaultPlan::default().panic_after(3).is_noop());
    }

    #[test]
    fn panic_fires_exactly_once() {
        let plan = FaultPlan::default().panic_after(3);
        let state = FaultState::default();
        assert!(!state.should_panic(&plan, 1));
        assert!(!state.should_panic(&plan, 2));
        assert!(state.should_panic(&plan, 3));
        assert!(!state.should_panic(&plan, 4), "one-shot");
    }

    #[test]
    fn reply_drops_follow_the_period() {
        let plan = FaultPlan::default().drop_reply_every(3);
        let state = FaultState::default();
        let drops: Vec<bool> = (0..6).map(|_| state.should_drop_reply(&plan)).collect();
        assert_eq!(drops, [false, false, true, false, false, true]);
    }

    #[test]
    fn txn_counter_is_monotonic() {
        let state = FaultState::default();
        assert_eq!(state.next_txn(), 1);
        assert_eq!(state.next_txn(), 2);
    }

    #[test]
    fn wal_faults_fire_once_at_their_append() {
        let plan = FaultPlan::default()
            .wal_fail_append(2)
            .wal_corrupt_append(4);
        let state = FaultState::default();
        assert_eq!(state.next_wal_append(), 1);
        assert_eq!(state.wal_fault(&plan, 1), None);
        assert_eq!(state.wal_fault(&plan, 2), Some(WalFault::Fail));
        assert_eq!(state.wal_fault(&plan, 3), None, "fail is one-shot");
        assert_eq!(state.wal_fault(&plan, 4), Some(WalFault::Corrupt));
        assert_eq!(state.wal_fault(&plan, 5), None);
        assert!(!plan.is_noop());
    }

    #[test]
    fn wal_fault_builders() {
        let plan = FaultPlan::default().wal_torn_append(1).wal_fsync_fail(7);
        assert_eq!(plan.wal_torn_append, Some(1));
        assert_eq!(plan.wal_fsync_fail, Some(7));
        let state = FaultState::default();
        assert_eq!(state.wal_fault(&plan, 1), Some(WalFault::Torn));
        assert_eq!(state.wal_fault(&plan, 7), Some(WalFault::FsyncFail));
    }

    #[test]
    fn enospc_fires_once_and_outranks_other_faults() {
        let plan = FaultPlan::default().wal_enospc(2).wal_fail_append(2);
        let state = FaultState::default();
        assert_eq!(state.wal_fault(&plan, 1), None);
        assert_eq!(state.wal_fault(&plan, 2), Some(WalFault::Enospc));
        // The suppressed Fail fires on the next append (both were armed).
        assert_eq!(state.wal_fault(&plan, 3), Some(WalFault::Fail));
        assert_eq!(state.wal_fault(&plan, 4), None, "both one-shot");
        assert!(!plan.is_noop());
    }

    #[test]
    fn link_fault_builders() {
        let link = LinkFaultPlan::default()
            .drop_frame_every(5)
            .duplicate_frame_every(3)
            .delay_per_frame(Duration::from_millis(1))
            .disconnect_mid_frame_every(11)
            .partition_after(40);
        assert_eq!(link.drop_frame_every, Some(5));
        assert_eq!(link.duplicate_frame_every, Some(3));
        assert_eq!(link.delay_per_frame, Some(Duration::from_millis(1)));
        assert_eq!(link.disconnect_mid_frame_every, Some(11));
        assert_eq!(link.partition_after, Some(40));
        assert!(!FaultPlan::default().link(link).is_noop());
    }
}
