//! Durability wiring: the engine's WAL writer + snapshot cadence.
//!
//! [`DurabilityConfig`] is the user-facing knob set on
//! [`EngineConfig`](crate::EngineConfig); [`Durable`] is the engine-side
//! state machine the scheduler drives: every ingested update is appended
//! to the WAL *before* it is enqueued (so an update the engine has
//! accepted is an update recovery can reproduce), and every
//! `snapshot_every` appends the scheduler publishes a fresh snapshot and
//! rotates the log so covered segments can be collected.
//!
//! WAL IO failures are **fail-stop**: an append or fsync error means the
//! durability promise can no longer be kept, so the scheduler panics and
//! the supervisor rebuilds the whole state from `snapshot + WAL tail` —
//! the same path a real crash takes (the PostgreSQL PANIC-on-fsync
//! lesson: carrying on after a failed sync silently voids the
//! guarantee).

use crate::fault::{FaultPlan, FaultState, WalFault};
use quts_db::snapshot::{self, Recovered};
use quts_db::wal::{self, FsyncPolicy, Wal};
use quts_db::{Store, Trade};
use std::io;
use std::path::PathBuf;

/// Group-commit knobs: how long the committer may hold a group open
/// before closing it with one fsync.
///
/// With group commit enabled, updates ingested by the scheduler gather
/// in a commit buffer; the group closes — one batched WAL append, one
/// covering fsync, then every parked ticket released at its durable
/// LSN — when it reaches `max_batch` records or its oldest entry has
/// waited `max_delay_us`. Disabled (the default), every update commits
/// individually, which is byte-identical to the pre-group-commit WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Close the group at this many buffered updates.
    pub max_batch: usize,
    /// Close the group once its oldest update has waited this long, in
    /// microseconds — the bound on added ack latency.
    pub max_delay_us: u64,
}

impl Default for GroupCommitConfig {
    /// 256-record groups, 200 µs max hold — deep enough to amortize an
    /// fsync across a burst, short enough to stay invisible next to a
    /// storage sync (~1 ms on common SSDs).
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 256,
            max_delay_us: 200,
        }
    }
}

impl GroupCommitConfig {
    /// Builder: sets the batch-size bound.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Builder: sets the hold-time bound in microseconds.
    pub fn with_max_delay_us(mut self, max_delay_us: u64) -> Self {
        self.max_delay_us = max_delay_us;
        self
    }
}

/// Durability knobs for the live engine.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments, snapshots and the manifest.
    pub dir: PathBuf,
    /// When appended updates are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Publish a snapshot (and rotate the WAL) every this many appends.
    pub snapshot_every: u64,
    /// Rotate to a new WAL segment past this size.
    pub segment_bytes: u64,
    /// Group-commit pipeline; `None` (default) keeps today's
    /// commit-per-update behavior.
    pub group_commit: Option<GroupCommitConfig>,
    /// Segment-name tag (`wal-<tag>-<lsn>.log`); a sharded engine sets
    /// `shard<k>` so every shard's WAL stream is attributable on disk.
    pub wal_tag: Option<String>,
    /// Added blocking latency per WAL sync, modeling a slower flush
    /// device (the writer sleeps — the CPU stays free, like real flush
    /// IO). `None` (default) syncs at native device speed. A bench/test
    /// knob: it changes timing only, never durability semantics.
    pub flush_delay: Option<std::time::Duration>,
}

impl DurabilityConfig {
    /// Sensible defaults over `dir`: `fsync = EveryN(64)` (bounded-loss,
    /// near-`Off` throughput), a snapshot every 4096 appends, 8 MiB
    /// segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            snapshot_every: 4096,
            segment_bytes: 8 << 20,
            group_commit: None,
            wal_tag: None,
            flush_delay: None,
        }
    }

    /// Builder: adds blocking per-sync latency modeling a slower flush
    /// device (see the `flush_delay` field).
    pub fn with_flush_delay(mut self, delay: std::time::Duration) -> Self {
        self.flush_delay = Some(delay);
        self
    }

    /// Builder: sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder: sets the snapshot cadence (in WAL appends).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        assert!(every > 0, "snapshot cadence must be positive");
        self.snapshot_every = every;
        self
    }

    /// Builder: sets the WAL segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "segment size must be positive");
        self.segment_bytes = bytes;
        self
    }

    /// Builder: enables the group-commit pipeline with `gc`'s knobs.
    pub fn with_group_commit(mut self, gc: GroupCommitConfig) -> Self {
        self.group_commit = Some(gc);
        self
    }

    /// Builder: tags WAL segment names (`wal-<tag>-<lsn>.log`).
    pub fn with_wal_tag(mut self, tag: impl Into<String>) -> Self {
        self.wal_tag = Some(tag.into());
        self
    }
}

/// The engine's durable state: the open WAL plus snapshot bookkeeping.
#[derive(Debug)]
pub(crate) struct Durable {
    wal: Wal,
    cfg: DurabilityConfig,
    /// Appends since the last published snapshot; seeds the cadence
    /// after recovery too (a long replay earns a prompt re-snapshot).
    appends_since_snapshot: u64,
    /// An injected `FsyncFail` fired during a deferred append: the
    /// record itself landed in the stream, but the group's covering
    /// sync must fail. Deferring the error to [`Durable::commit_group`]
    /// models a real group-fsync failure — every member appended, none
    /// durable, none ackable.
    pending_fsync_failure: bool,
}

impl Durable {
    /// Initialises a fresh durability directory (baseline snapshot of
    /// `store` at LSN 0) and opens the first WAL segment. Refuses with
    /// `AlreadyExists` if the directory is already initialised — use
    /// [`Durable::recover`] for that.
    pub(crate) fn create(cfg: DurabilityConfig, store: &Store) -> io::Result<Durable> {
        snapshot::init_dir(&cfg.dir, store)?;
        let mut wal = Wal::create_tagged(
            &cfg.dir,
            cfg.wal_tag.as_deref(),
            cfg.fsync,
            cfg.segment_bytes,
            1,
        )?;
        wal.set_flush_delay(cfg.flush_delay);
        Ok(Durable {
            wal,
            cfg,
            appends_since_snapshot: 0,
            pending_fsync_failure: false,
        })
    }

    /// Recovers state from the directory and reopens the WAL at the
    /// post-replay LSN (fresh segment; any valid prior records were
    /// already replayed, so truncate-create loses nothing).
    pub(crate) fn recover(cfg: DurabilityConfig) -> io::Result<(Durable, Recovered)> {
        let rec = snapshot::recover(&cfg.dir)?;
        let mut wal = Wal::create_tagged(
            &cfg.dir,
            cfg.wal_tag.as_deref(),
            cfg.fsync,
            cfg.segment_bytes,
            rec.next_lsn,
        )?;
        wal.set_flush_delay(cfg.flush_delay);
        let durable = Durable {
            wal,
            cfg,
            appends_since_snapshot: rec.replayed,
            pending_fsync_failure: false,
        };
        Ok((durable, rec))
    }

    /// The configuration this durable state was opened with.
    pub(crate) fn into_config(self) -> DurabilityConfig {
        self.cfg
    }

    /// The LSN the next append will be assigned. Trace events for an
    /// update are stamped with this *before* the append syscall, so the
    /// ingest record is in the ring before the WAL shipper's tailer can
    /// possibly see the frame on disk.
    pub(crate) fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Appends one update to the WAL (before it may be enqueued),
    /// applying the fsync policy and any injected IO faults. An `Err`
    /// means the update is **not** durable — the caller must fail-stop.
    pub(crate) fn append(
        &mut self,
        trade: &Trade,
        plan: &FaultPlan,
        faults: &FaultState,
    ) -> io::Result<u64> {
        let payload = wal::encode_trade(trade);
        match faults.wal_fault(plan, faults.next_wal_append()) {
            Some(WalFault::Fail) => {
                return Err(io::Error::other("fault injection: WAL append failed"));
            }
            Some(WalFault::Enospc) => {
                // Disk full before a byte lands: the update cannot be
                // made durable, so it must never be acked. Fail-stop.
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "fault injection: disk full (ENOSPC)",
                ));
            }
            Some(WalFault::Torn) => {
                // The frame header lands, the payload does not — the
                // exact residue of a crash mid-write.
                self.wal.append_torn(&payload, wal::FRAME_HEADER)?;
                return Err(io::Error::other("fault injection: torn WAL append"));
            }
            Some(WalFault::Corrupt) => {
                // Silent media corruption: the engine believes the
                // append succeeded; only replay's CRC will know.
                let lsn = self.wal.append_corrupted(&payload)?;
                self.appends_since_snapshot += 1;
                return Ok(lsn);
            }
            Some(WalFault::FsyncFail) => {
                // The write may have landed but the sync did not: the
                // record's durability is unknown, so fail-stop.
                let _ = self.wal.append(&payload);
                return Err(io::Error::other("fault injection: fsync failed"));
            }
            None => {}
        }
        let lsn = self.wal.append(&payload)?;
        self.appends_since_snapshot += 1;
        Ok(lsn)
    }

    /// Appends one update to the WAL **without** applying the fsync
    /// policy — the group-commit half of [`Durable::append`]. The same
    /// fault-injection points fire per record; any destructive fault
    /// (`Fail`, `Enospc`, `Torn`, `FsyncFail`) surfaces as `Err` so the
    /// caller poisons the *whole* group — a group with a failed member
    /// must never ack any member. The record is not durable until
    /// [`Durable::commit_group`] (or a forced [`Durable::sync`])
    /// returns.
    pub(crate) fn append_deferred(
        &mut self,
        trade: &Trade,
        plan: &FaultPlan,
        faults: &FaultState,
    ) -> io::Result<u64> {
        let payload = wal::encode_trade(trade);
        match faults.wal_fault(plan, faults.next_wal_append()) {
            Some(WalFault::Fail) => {
                return Err(io::Error::other("fault injection: WAL append failed"));
            }
            Some(WalFault::Enospc) => {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "fault injection: disk full (ENOSPC)",
                ));
            }
            Some(WalFault::Torn) => {
                self.wal.append_torn(&payload, wal::FRAME_HEADER)?;
                return Err(io::Error::other("fault injection: torn WAL append"));
            }
            Some(WalFault::Corrupt) => {
                let lsn = self.wal.append_corrupted(&payload)?;
                self.appends_since_snapshot += 1;
                return Ok(lsn);
            }
            Some(WalFault::FsyncFail) => {
                // The record lands in the stream (replay may resurrect
                // it) but the group's covering sync will fail: defer
                // the error to [`Durable::commit_group`] so the whole
                // group poisons at the sync point, after every member
                // has been appended.
                let lsn = self.wal.append_deferred(&payload)?;
                self.appends_since_snapshot += 1;
                self.pending_fsync_failure = true;
                return Ok(lsn);
            }
            None => {}
        }
        let lsn = self.wal.append_deferred(&payload)?;
        self.appends_since_snapshot += 1;
        Ok(lsn)
    }

    /// Closes the current group: `force` syncs unconditionally (a parked
    /// ticket is waiting for durability), otherwise the configured fsync
    /// policy decides once for the whole group. An `Err` means the
    /// group's durability is unknown — fail-stop, ack nothing.
    pub(crate) fn commit_group(&mut self, force: bool) -> io::Result<()> {
        if self.pending_fsync_failure {
            // The sync covering this group fails: its records sit in
            // the stream (replay decides their fate) but durability was
            // never established — ack nothing.
            self.pending_fsync_failure = false;
            return Err(io::Error::other("fault injection: fsync failed"));
        }
        if force {
            self.wal.sync()
        } else {
            self.wal.commit_group()
        }
    }

    /// Makes everything appended so far durable before a ticket is
    /// released — a no-op when the policy already synced (`Always`
    /// syncs per append, so nothing is outstanding).
    pub(crate) fn sync_for_ack(&mut self) -> io::Result<()> {
        if self.wal.unsynced_appends() > 0 {
            self.wal.sync()
        } else {
            Ok(())
        }
    }

    /// Number of fsyncs the WAL writer has issued (this incarnation).
    pub(crate) fn fsync_count(&self) -> u64 {
        self.wal.fsync_count()
    }

    /// Whether the snapshot cadence is due.
    pub(crate) fn should_snapshot(&self) -> bool {
        self.appends_since_snapshot >= self.cfg.snapshot_every
    }

    /// Publishes a snapshot covering everything appended so far and
    /// rotates the WAL first, so every pre-rotation segment is covered
    /// and collectable. Returns the snapshot's LSN.
    pub(crate) fn publish_snapshot(
        &mut self,
        store: &Store,
        missed: &[u64],
        pending: &[Trade],
    ) -> io::Result<u64> {
        let last_lsn = self.wal.next_lsn() - 1;
        self.wal.rotate()?;
        snapshot::publish(&self.cfg.dir, store, missed, pending, last_lsn)?;
        self.appends_since_snapshot = 0;
        Ok(last_lsn)
    }

    /// Forces every appended record to stable storage (shutdown path).
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }
}
