//! Durability wiring: the engine's WAL writer + snapshot cadence.
//!
//! [`DurabilityConfig`] is the user-facing knob set on
//! [`EngineConfig`](crate::EngineConfig); [`Durable`] is the engine-side
//! state machine the scheduler drives: every ingested update is appended
//! to the WAL *before* it is enqueued (so an update the engine has
//! accepted is an update recovery can reproduce), and every
//! `snapshot_every` appends the scheduler publishes a fresh snapshot and
//! rotates the log so covered segments can be collected.
//!
//! WAL IO failures are **fail-stop**: an append or fsync error means the
//! durability promise can no longer be kept, so the scheduler panics and
//! the supervisor rebuilds the whole state from `snapshot + WAL tail` —
//! the same path a real crash takes (the PostgreSQL PANIC-on-fsync
//! lesson: carrying on after a failed sync silently voids the
//! guarantee).

use crate::fault::{FaultPlan, FaultState, WalFault};
use quts_db::snapshot::{self, Recovered};
use quts_db::wal::{self, FsyncPolicy, Wal};
use quts_db::{Store, Trade};
use std::io;
use std::path::PathBuf;

/// Durability knobs for the live engine.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments, snapshots and the manifest.
    pub dir: PathBuf,
    /// When appended updates are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Publish a snapshot (and rotate the WAL) every this many appends.
    pub snapshot_every: u64,
    /// Rotate to a new WAL segment past this size.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Sensible defaults over `dir`: `fsync = EveryN(64)` (bounded-loss,
    /// near-`Off` throughput), a snapshot every 4096 appends, 8 MiB
    /// segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            snapshot_every: 4096,
            segment_bytes: 8 << 20,
        }
    }

    /// Builder: sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder: sets the snapshot cadence (in WAL appends).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        assert!(every > 0, "snapshot cadence must be positive");
        self.snapshot_every = every;
        self
    }

    /// Builder: sets the WAL segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "segment size must be positive");
        self.segment_bytes = bytes;
        self
    }
}

/// The engine's durable state: the open WAL plus snapshot bookkeeping.
#[derive(Debug)]
pub(crate) struct Durable {
    wal: Wal,
    cfg: DurabilityConfig,
    /// Appends since the last published snapshot; seeds the cadence
    /// after recovery too (a long replay earns a prompt re-snapshot).
    appends_since_snapshot: u64,
}

impl Durable {
    /// Initialises a fresh durability directory (baseline snapshot of
    /// `store` at LSN 0) and opens the first WAL segment. Refuses with
    /// `AlreadyExists` if the directory is already initialised — use
    /// [`Durable::recover`] for that.
    pub(crate) fn create(cfg: DurabilityConfig, store: &Store) -> io::Result<Durable> {
        snapshot::init_dir(&cfg.dir, store)?;
        let wal = Wal::create(&cfg.dir, cfg.fsync, cfg.segment_bytes, 1)?;
        Ok(Durable {
            wal,
            cfg,
            appends_since_snapshot: 0,
        })
    }

    /// Recovers state from the directory and reopens the WAL at the
    /// post-replay LSN (fresh segment; any valid prior records were
    /// already replayed, so truncate-create loses nothing).
    pub(crate) fn recover(cfg: DurabilityConfig) -> io::Result<(Durable, Recovered)> {
        let rec = snapshot::recover(&cfg.dir)?;
        let wal = Wal::create(&cfg.dir, cfg.fsync, cfg.segment_bytes, rec.next_lsn)?;
        let durable = Durable {
            wal,
            cfg,
            appends_since_snapshot: rec.replayed,
        };
        Ok((durable, rec))
    }

    /// The configuration this durable state was opened with.
    pub(crate) fn into_config(self) -> DurabilityConfig {
        self.cfg
    }

    /// Appends one update to the WAL (before it may be enqueued),
    /// applying the fsync policy and any injected IO faults. An `Err`
    /// means the update is **not** durable — the caller must fail-stop.
    pub(crate) fn append(
        &mut self,
        trade: &Trade,
        plan: &FaultPlan,
        faults: &FaultState,
    ) -> io::Result<u64> {
        let payload = wal::encode_trade(trade);
        match faults.wal_fault(plan, faults.next_wal_append()) {
            Some(WalFault::Fail) => {
                return Err(io::Error::other("fault injection: WAL append failed"));
            }
            Some(WalFault::Enospc) => {
                // Disk full before a byte lands: the update cannot be
                // made durable, so it must never be acked. Fail-stop.
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "fault injection: disk full (ENOSPC)",
                ));
            }
            Some(WalFault::Torn) => {
                // The frame header lands, the payload does not — the
                // exact residue of a crash mid-write.
                self.wal.append_torn(&payload, wal::FRAME_HEADER)?;
                return Err(io::Error::other("fault injection: torn WAL append"));
            }
            Some(WalFault::Corrupt) => {
                // Silent media corruption: the engine believes the
                // append succeeded; only replay's CRC will know.
                let lsn = self.wal.append_corrupted(&payload)?;
                self.appends_since_snapshot += 1;
                return Ok(lsn);
            }
            Some(WalFault::FsyncFail) => {
                // The write may have landed but the sync did not: the
                // record's durability is unknown, so fail-stop.
                let _ = self.wal.append(&payload);
                return Err(io::Error::other("fault injection: fsync failed"));
            }
            None => {}
        }
        let lsn = self.wal.append(&payload)?;
        self.appends_since_snapshot += 1;
        Ok(lsn)
    }

    /// Whether the snapshot cadence is due.
    pub(crate) fn should_snapshot(&self) -> bool {
        self.appends_since_snapshot >= self.cfg.snapshot_every
    }

    /// Publishes a snapshot covering everything appended so far and
    /// rotates the WAL first, so every pre-rotation segment is covered
    /// and collectable. Returns the snapshot's LSN.
    pub(crate) fn publish_snapshot(
        &mut self,
        store: &Store,
        missed: &[u64],
        pending: &[Trade],
    ) -> io::Result<u64> {
        let last_lsn = self.wal.next_lsn() - 1;
        self.wal.rotate()?;
        snapshot::publish(&self.cfg.dir, store, missed, pending, last_lsn)?;
        self.appends_since_snapshot = 0;
        Ok(last_lsn)
    }

    /// Forces every appended record to stable storage (shutdown path).
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }
}
