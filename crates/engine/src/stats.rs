//! Live engine statistics, shared between the scheduler thread and
//! clients.

use quts_metrics::OnlineStats;
use quts_qc::QcAggregates;

/// A snapshot of the engine's accounting, readable at any time through
/// [`EngineHandle::stats`](crate::EngineHandle::stats).
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    /// Submitted maxima and gained profit (Table 1 symbols).
    pub aggregates: QcAggregates,
    /// Response times of answered queries, milliseconds.
    pub response_time_ms: OnlineStats,
    /// Staleness (`#uu`) observed by answered queries.
    pub staleness: OnlineStats,
    /// Updates applied to the store.
    pub updates_applied: u64,
    /// Updates dropped by register-table invalidation.
    pub updates_invalidated: u64,
    /// The scheduler's current ρ.
    pub rho: f64,
    /// Adaptation periods completed.
    pub adaptations: u64,
    /// ρ after each adaptation period, in order (Figure 9d live).
    pub rho_history: Vec<f64>,

    // --- Overload & robustness counters ---
    /// Submissions refused because the admission queue was full.
    pub queue_full_rejections: u64,
    /// Queries aborted unexecuted because their contract lifetime ran
    /// out while queued (zero profit).
    pub shed_expired: u64,
    /// Pending updates dropped at the backlog high-water mark.
    pub updates_dropped_overload: u64,
    /// Scheduler restarts after panics.
    pub engine_restarts: u64,
}

impl LiveStats {
    /// Total gained profit over the submitted maximum.
    pub fn total_pct(&self) -> f64 {
        self.aggregates.total_pct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot() {
        let s = LiveStats::default();
        assert_eq!(s.total_pct(), 0.0);
        assert_eq!(s.updates_applied, 0);
        assert_eq!(s.rho, 0.0);
        assert_eq!(s.queue_full_rejections, 0);
        assert_eq!(s.shed_expired, 0);
        assert_eq!(s.updates_dropped_overload, 0);
        assert_eq!(s.engine_restarts, 0);
    }
}
