//! Live engine statistics, shared between the scheduler thread and
//! clients.

use quts_metrics::OnlineStats;
use quts_qc::QcAggregates;

/// A snapshot of the engine's accounting, readable at any time through
/// [`EngineHandle::stats`](crate::EngineHandle::stats).
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    /// Submitted maxima and gained profit (Table 1 symbols).
    pub aggregates: QcAggregates,
    /// Response times of answered queries, milliseconds.
    pub response_time_ms: OnlineStats,
    /// Staleness (`#uu`) observed by answered queries.
    pub staleness: OnlineStats,
    /// Updates applied to the store.
    pub updates_applied: u64,
    /// Updates dropped by register-table invalidation.
    pub updates_invalidated: u64,
    /// The scheduler's current ρ.
    pub rho: f64,
    /// Adaptation periods completed.
    pub adaptations: u64,
    /// ρ after each adaptation period, in order (Figure 9d live).
    pub rho_history: Vec<f64>,
}

impl LiveStats {
    /// Total gained profit over the submitted maximum.
    pub fn total_pct(&self) -> f64 {
        self.aggregates.total_pct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot() {
        let s = LiveStats::default();
        assert_eq!(s.total_pct(), 0.0);
        assert_eq!(s.updates_applied, 0);
        assert_eq!(s.rho, 0.0);
    }
}
