//! Live engine statistics, shared between the scheduler thread and
//! clients.

use quts_metrics::{LifecycleSpans, LogHistogram, OnlineStats};
use quts_qc::QcAggregates;

/// How many trailing ρ values [`LiveStats::rho_history`] retains. Older
/// entries are discarded (counted in
/// [`LiveStats::rho_history_truncated`]) so a long-lived engine holds a
/// bounded snapshot instead of one f64 per adaptation period forever.
pub const RHO_HISTORY_CAP: usize = 256;

/// A snapshot of the engine's accounting, readable at any time through
/// [`EngineHandle::stats`](crate::EngineHandle::stats).
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    /// Submitted maxima and gained profit (Table 1 symbols).
    pub aggregates: QcAggregates,
    /// Response times of answered queries, milliseconds.
    pub response_time_ms: OnlineStats,
    /// Staleness (`#uu`) observed by answered queries.
    pub staleness: OnlineStats,
    /// Updates applied to the store.
    pub updates_applied: u64,
    /// Updates dropped by register-table invalidation.
    pub updates_invalidated: u64,
    /// The scheduler's current ρ.
    pub rho: f64,
    /// Adaptation periods completed.
    pub adaptations: u64,
    /// ρ after each adaptation period, oldest first — the last
    /// [`RHO_HISTORY_CAP`] values only (Figure 9d live).
    pub rho_history: Vec<f64>,
    /// ρ values discarded from the front of [`rho_history`]
    /// (`adaptations - rho_history.len()`, kept explicit for clients).
    ///
    /// [`rho_history`]: LiveStats::rho_history
    pub rho_history_truncated: u64,

    // --- Queue-depth gauges (refreshed on the scheduler's stat paths) ---
    /// Queries admitted but not yet executed or shed.
    pub pending_queries: u64,
    /// Distinct pending updates (register-table entries).
    pub pending_updates: u64,

    /// Lifecycle-span histograms (queue wait, service, response,
    /// staleness, update delay) plus the shed breakdown. Populated only
    /// when [`EngineConfig::trace`](crate::EngineConfig) is at level
    /// `Spans` or `Full`; empty otherwise.
    pub spans: LifecycleSpans,

    // --- Overload & robustness counters ---
    /// Submissions refused because the admission queue was full.
    pub queue_full_rejections: u64,
    /// Queries aborted unexecuted because their contract lifetime ran
    /// out while queued (zero profit).
    pub shed_expired: u64,
    /// Pending updates dropped at the backlog high-water mark.
    pub updates_dropped_overload: u64,
    /// Scheduler restarts after panics.
    pub engine_restarts: u64,
    /// Pending queries lost to a panic restart (their reply channels
    /// disconnected in the unwind; clients see `EngineDown`).
    pub shed_on_restart_queries: u64,
    /// Pending updates lost to a panic restart. Stays zero with
    /// durability enabled — recovery re-enqueues them from the WAL.
    pub shed_on_restart_updates: u64,

    // --- Durability & recovery ---
    /// Updates appended to the WAL (before enqueue).
    pub wal_appended: u64,
    /// LSN of the most recent WAL append (0: nothing appended yet).
    /// Replication lag is measured against this watermark.
    pub wal_last_lsn: u64,
    /// WAL/snapshot IO errors absorbed (fail-stop appends, failed
    /// shutdown snapshots).
    pub wal_io_errors: u64,
    /// Snapshots published (periodic cadence + clean shutdown).
    pub snapshots_written: u64,
    /// LSN covered by the most recent snapshot.
    pub snapshot_last_lsn: u64,
    /// Updates replayed from the WAL tail across all recoveries.
    pub recovery_replayed_updates: u64,
    /// Torn/corrupt WAL bytes truncated during recoveries.
    pub wal_truncated_bytes: u64,

    // --- Group commit ---
    /// WAL fsyncs issued across all incarnations; with group commit one
    /// fsync covers a whole batch, so `wal_appended / wal_fsyncs` is the
    /// realized amortization factor.
    pub wal_fsyncs: u64,
    /// Groups committed (each: one batched append + at most one fsync).
    pub group_commits: u64,
    /// Updates parked in the commit buffer, not yet durable or acked. A
    /// panic before the group's fsync sheds them (never acked, so no
    /// promise is broken); the supervisor folds this gauge into
    /// [`shed_on_restart_updates`](LiveStats::shed_on_restart_updates).
    pub group_buffered: u64,
    /// Committed group sizes (records per fsync).
    pub group_commit_batch: LogHistogram,
    /// Per-update wait from buffer entry to covering fsync return, µs.
    pub group_commit_wait_us: LogHistogram,

    // --- Cross-shard transactions (sharded engines only) ---
    /// Cross-shard lock grants this shard served (each froze the shard
    /// from grant to release).
    pub cross_shard_locks: u64,
    /// Lock grants whose release never arrived: the shard resumed at the
    /// coordinator's deadline instead of hanging.
    pub cross_shard_lock_timeouts: u64,
}

impl LiveStats {
    /// Total gained profit over the submitted maximum.
    pub fn total_pct(&self) -> f64 {
        self.aggregates.total_pct()
    }

    /// Appends one adaptation's ρ, discarding the oldest entry once the
    /// history holds [`RHO_HISTORY_CAP`] values.
    pub fn push_rho(&mut self, rho: f64) {
        if self.rho_history.len() >= RHO_HISTORY_CAP {
            self.rho_history.remove(0);
            self.rho_history_truncated += 1;
        }
        self.rho_history.push(rho);
    }

    /// Why work was lost, by cause — the shed breakdown exposed over
    /// `METRICS`.
    pub fn shed_breakdown(&self) -> [(&'static str, u64); 5] {
        [
            ("queue_full", self.queue_full_rejections),
            ("lifetime_expired", self.shed_expired),
            ("update_overload", self.updates_dropped_overload),
            ("restart_lost_query", self.shed_on_restart_queries),
            ("restart_lost_update", self.shed_on_restart_updates),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot() {
        let s = LiveStats::default();
        assert_eq!(s.total_pct(), 0.0);
        assert_eq!(s.updates_applied, 0);
        assert_eq!(s.rho, 0.0);
        assert_eq!(s.queue_full_rejections, 0);
        assert_eq!(s.shed_expired, 0);
        assert_eq!(s.updates_dropped_overload, 0);
        assert_eq!(s.engine_restarts, 0);
        assert_eq!(s.pending_queries, 0);
        assert_eq!(s.pending_updates, 0);
        assert_eq!(s.rho_history_truncated, 0);
        assert_eq!(s.spans.committed, 0);
        assert_eq!(s.shed_on_restart_queries, 0);
        assert_eq!(s.shed_on_restart_updates, 0);
        assert_eq!(s.wal_appended, 0);
        assert_eq!(s.wal_last_lsn, 0);
        assert_eq!(s.wal_io_errors, 0);
        assert_eq!(s.snapshots_written, 0);
        assert_eq!(s.snapshot_last_lsn, 0);
        assert_eq!(s.recovery_replayed_updates, 0);
        assert_eq!(s.wal_truncated_bytes, 0);
        assert_eq!(s.wal_fsyncs, 0);
        assert_eq!(s.group_commits, 0);
        assert_eq!(s.group_buffered, 0);
        assert_eq!(s.group_commit_batch.count(), 0);
        assert_eq!(s.group_commit_wait_us.count(), 0);
        assert_eq!(s.cross_shard_locks, 0);
        assert_eq!(s.cross_shard_lock_timeouts, 0);
    }

    #[test]
    fn rho_history_is_capped_with_truncation_count() {
        let mut s = LiveStats::default();
        for i in 0..(RHO_HISTORY_CAP + 10) {
            s.push_rho(i as f64);
        }
        assert_eq!(s.rho_history.len(), RHO_HISTORY_CAP);
        assert_eq!(s.rho_history_truncated, 10);
        // The window keeps the most recent values, oldest first.
        assert_eq!(s.rho_history[0], 10.0);
        assert_eq!(*s.rho_history.last().unwrap(), (RHO_HISTORY_CAP + 9) as f64);
    }

    #[test]
    fn shed_breakdown_mirrors_counters() {
        let s = LiveStats {
            queue_full_rejections: 3,
            shed_expired: 2,
            updates_dropped_overload: 1,
            shed_on_restart_queries: 5,
            shed_on_restart_updates: 4,
            ..LiveStats::default()
        };
        let b = s.shed_breakdown();
        assert_eq!(b[0], ("queue_full", 3));
        assert_eq!(b[1], ("lifetime_expired", 2));
        assert_eq!(b[2], ("update_overload", 1));
        assert_eq!(b[3], ("restart_lost_query", 5));
        assert_eq!(b[4], ("restart_lost_update", 4));
    }
}
