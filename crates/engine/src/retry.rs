//! Jittered exponential backoff, shared by every reconnect/retry loop.
//!
//! Three different loops in this system wait for a peer that is
//! temporarily unable to serve them: a polite client retrying a
//! connection-capped server's `ERR busy`, a replica reconnecting to its
//! primary across link faults, and (conceptually) the supervisor's
//! restart pacing. They all want the same shape — double the wait each
//! attempt, cap it, and add jitter so a herd of waiters does not
//! re-arrive in lockstep. This module is that shape, factored out so the
//! bounds are tested once.

use std::time::Duration;

/// Exponential backoff state: `base × 2^(attempt−1)`, capped, with
/// clock-derived jitter in `[0, delay)` added on top.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A fresh backoff doubling from `base` up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
        }
    }

    /// Completed attempts so far (i.e. how many delays were handed out).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Forgets the failure streak — call after a success so the next
    /// failure starts over from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The raw (jitter-free) delay for the next attempt, advancing the
    /// attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        self.attempt = self.attempt.saturating_add(1);
        delay_for(self.base, self.cap, self.attempt)
    }

    /// The next delay with jitter applied — what callers should sleep.
    pub fn next_sleep(&mut self) -> Duration {
        let delay = self.next_delay();
        delay + jitter(delay)
    }
}

/// The deterministic component: `base × 2^(attempt−1)`, saturating, and
/// never above `cap`. Attempt numbers are 1-based; attempt 0 is treated
/// as 1.
pub fn delay_for(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(20); // 2^20 × any sane base saturates the cap
    base.saturating_mul(1u32 << exp).min(cap)
}

/// Jitter in `[0, delay)`, derived from the wall clock's nanoseconds.
/// Enough to de-herd concurrent waiters without an RNG dependency; a
/// zero `delay` yields zero jitter.
pub fn jitter(delay: Duration) -> Duration {
    use std::time::{SystemTime, UNIX_EPOCH};
    let micros = delay.as_micros().max(1) as u64;
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0) as u64;
    Duration::from_micros(nanos % micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_from_base_until_the_cap() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(50);
        let mut b = Backoff::new(base, cap);
        assert_eq!(b.next_delay(), Duration::from_millis(2));
        assert_eq!(b.next_delay(), Duration::from_millis(4));
        assert_eq!(b.next_delay(), Duration::from_millis(8));
        assert_eq!(b.next_delay(), Duration::from_millis(16));
        assert_eq!(b.next_delay(), Duration::from_millis(32));
        // Capped from here on, forever.
        for _ in 0..40 {
            assert_eq!(b.next_delay(), cap);
        }
        assert_eq!(b.attempts(), 45);
    }

    #[test]
    fn reset_restarts_the_streak() {
        let mut b = Backoff::new(Duration::from_millis(2), Duration::from_millis(50));
        b.next_delay();
        b.next_delay();
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), Duration::from_millis(2));
    }

    #[test]
    fn delay_for_is_monotone_and_capped() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_secs(1);
        let mut prev = Duration::ZERO;
        for attempt in 0..64 {
            let d = delay_for(base, cap, attempt);
            assert!(d >= prev, "monotone");
            assert!(d <= cap, "never exceeds the cap");
            assert!(d >= base, "never below the base");
            prev = d;
        }
        // Huge attempt counts saturate rather than overflow.
        assert_eq!(delay_for(base, cap, u32::MAX), cap);
    }

    #[test]
    fn jitter_is_bounded_by_the_delay() {
        let delay = Duration::from_millis(10);
        for _ in 0..100 {
            let j = jitter(delay);
            assert!(j < delay, "jitter {j:?} must stay below {delay:?}");
        }
        assert_eq!(jitter(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn next_sleep_stays_within_twice_the_raw_delay() {
        let mut b = Backoff::new(Duration::from_millis(4), Duration::from_millis(50));
        for _ in 0..20 {
            let attempt_before = b.attempts();
            let sleep = b.next_sleep();
            let raw = delay_for(
                Duration::from_millis(4),
                Duration::from_millis(50),
                attempt_before + 1,
            );
            assert!(sleep >= raw);
            assert!(sleep < raw * 2, "delay + jitter < 2 × delay");
        }
    }
}
