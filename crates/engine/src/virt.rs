//! Virtual-time deterministic driver for the live engine.
//!
//! [`run_virtual`] executes the *real* scheduler — the same
//! [`Runtime`](crate::runtime) the engine thread runs — over a manually
//! advanced clock, single-stepped by this driver instead of a worker
//! thread draining a channel. Every source of nondeterminism in a live
//! run is pinned:
//!
//! - **Time** is an [`EngineClock::Virtual`](crate::clock) counter:
//!   synthetic service costs advance it instantly, idle gaps jump it to
//!   the next arrival.
//! - **Arrival interleaving** is fixed by the trace: queries and updates
//!   are ingested in merged arrival order (updates win exact ties, the
//!   simulator's merge rule) rather than racing through a channel.
//! - **Randomness** stays the engine's own seeded atom coin, untouched.
//!
//! The result is a live-engine run that is bit-reproducible for a given
//! `(trace, config)` — the property the conformance oracle needs to diff
//! it against the discrete-event simulator. Two ordering rules replicate
//! the simulator's event loop exactly: at the top of each step only
//! arrivals *strictly* before "now" are ingested (a completion at `t`
//! settles its next dispatch before arrivals at `t`), while an idle
//! engine jumps to the next arrival time and ingests arrivals *at* that
//! instant (an idle dispatch happens at the arrival time itself).

use crate::clock::EngineClock;
use crate::config::EngineConfig;
use crate::fault::FaultState;
use crate::runtime::{Msg, QueryError, QueryReply, Runtime, SubmitStamp};
use crate::stats::LiveStats;
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use quts_db::{StalenessTracker, Store};
use quts_metrics::{TraceRecord, TraceRing};
use quts_sim::{QuerySpec, UpdateSpec};
use std::sync::Arc;

/// Resolution of one traced query in a virtual run.
#[derive(Debug, Clone)]
pub struct VirtualOutcome {
    /// The id the live engine assigned (its merged arrival sequence
    /// number) — equals the query's index in the merged arrival order,
    /// which is how the oracle aligns it with the simulator's `QueryId`.
    pub live_id: u64,
    /// The committed reply, or why the query earned nothing.
    pub reply: Result<QueryReply, QueryError>,
}

/// Everything a virtual-time run of the live engine produces.
#[derive(Debug, Clone)]
pub struct VirtualRunReport {
    /// Final statistics (same struct a real engine's `shutdown` returns).
    pub stats: LiveStats,
    /// Per-query resolutions, in trace (arrival) order.
    pub outcomes: Vec<VirtualOutcome>,
    /// Decision trace, oldest first — `Some` when `config.trace` is
    /// `Full` (size the ring to the trace; overwrites are not replayed).
    pub trace: Option<Vec<TraceRecord>>,
    /// Final price of every stock, by dense [`StockId`](quts_db::StockId)
    /// index.
    pub final_prices: Vec<f64>,
    /// Σ unapplied-update counters at the end (0 once fully drained).
    pub total_unapplied: u64,
    /// Distinct stocks with a pending (never-applied) update at the end.
    pub pending_updates: u64,
    /// Virtual time when the run went idle with the trace exhausted.
    pub end_us: u64,
}

/// Runs the live engine's scheduler over a trace in virtual time; see
/// the module docs. `queries` and `updates` must each be sorted by
/// arrival time (the simulator's trace contract).
///
/// # Panics
/// Panics if either slice is out of arrival order.
pub fn run_virtual(
    num_stocks: u32,
    queries: &[QuerySpec],
    updates: &[UpdateSpec],
    config: &EngineConfig,
) -> VirtualRunReport {
    assert!(
        queries.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "query trace must be sorted by arrival"
    );
    assert!(
        updates.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "update trace must be sorted by arrival"
    );

    let mut store = Store::with_synthetic_stocks(num_stocks);
    let mut tracker = StalenessTracker::new(store.len());
    let stats = Arc::new(Mutex::new(LiveStats {
        rho: config.initial_rho,
        ..LiveStats::default()
    }));
    let ring = config
        .trace
        .level
        .events()
        .then(|| Arc::new(Mutex::new(TraceRing::new(config.trace.ring_capacity))));
    // The runtime still owns a receiver (its ingest path is unchanged),
    // but the driver feeds it directly; keep the sender alive so the
    // channel never reads as disconnected.
    let (_tx, rx) = bounded::<Msg>(1);

    let mut replies: Vec<(u64, Receiver<Result<QueryReply, QueryError>>)> =
        Vec::with_capacity(queries.len());
    let end_us;
    {
        let mut rt = Runtime::new(
            &mut store,
            &mut tracker,
            config,
            rx,
            Arc::clone(&stats),
            Arc::new(FaultState::default()),
            ring.clone(),
            None,
            None,
            Vec::new(),
            EngineClock::virtual_at_zero(),
        );
        // Cursors into the sorted traces.
        let mut qi = 0usize;
        let mut ui = 0usize;
        // Ingests every arrival due by `limit` (inclusive), updates
        // winning exact ties — the simulator's merge rule.
        let mut ingest_due =
            |rt: &mut Runtime, qi: &mut usize, ui: &mut usize, limit: u64, inclusive: bool| loop {
                let qa = queries.get(*qi).map(|q| q.arrival.as_micros());
                let ua = updates.get(*ui).map(|u| u.arrival.as_micros());
                let due = |at: u64| if inclusive { at <= limit } else { at < limit };
                let take_update = match (qa, ua) {
                    (_, None) => false,
                    (None, Some(u)) => due(u),
                    (Some(q), Some(u)) => u <= q && due(u),
                };
                if take_update {
                    rt.ingest_direct(Msg::Update(updates[*ui].trade));
                    *ui += 1;
                    continue;
                }
                match qa {
                    Some(q) if due(q) && (ua.is_none() || q < ua.unwrap()) => {
                        let spec = &queries[*qi];
                        let (reply_tx, reply_rx) = bounded(1);
                        replies.push((rt.peek_next_seq(), reply_rx));
                        rt.ingest_direct(Msg::Query {
                            op: spec.op.clone(),
                            qc: spec.qc.clone(),
                            submitted: SubmitStamp::VirtualUs(spec.arrival.as_micros()),
                            ctx: None,
                            reply: reply_tx,
                        });
                        *qi += 1;
                        continue;
                    }
                    _ => break,
                }
            };
        loop {
            // Completions at t dispatch before arrivals at t: only
            // strictly past arrivals enter here.
            let now = rt.now_us();
            ingest_due(&mut rt, &mut qi, &mut ui, now, false);
            rt.refresh(rt.now_us());
            if rt.execute_one() {
                continue;
            }
            // Idle: jump to the next arrival (if any) and admit
            // everything landing at that instant.
            let next_q = queries.get(qi).map(|q| q.arrival.as_micros());
            let next_u = updates.get(ui).map(|u| u.arrival.as_micros());
            let at = match (next_q, next_u) {
                (Some(q), Some(u)) => q.min(u),
                (Some(q), None) => q,
                (None, Some(u)) => u,
                (None, None) => break, // trace exhausted, queues drained
            };
            rt.advance_clock_to(at);
            let now = rt.now_us();
            ingest_due(&mut rt, &mut qi, &mut ui, now, true);
        }
        // No trailing boundary settle here. The simulator parks one
        // timer while work is outstanding, and whichever timer is still
        // parked when the last transaction resolves fires afterwards —
        // at a boundary that depends on the whole push/fire history of
        // its event heap, not on the scheduler state at the end. Every
        // parked boundary is at most one atom (τ) past the clock it was
        // computed at, so that stale fire settles at most one atom and
        // one adaptation, strictly after the final resolution, with both
        // queues empty: dead state that decides nothing. The driver
        // stops at the last resolution instead, and the differential
        // oracle compares boundary series up to that point (see the
        // conformance crate's oracle docs for the tail tolerance).
        end_us = rt.now_us();
    }

    let outcomes = replies
        .into_iter()
        .map(|(live_id, rx)| VirtualOutcome {
            live_id,
            reply: rx.try_recv().unwrap_or(Err(QueryError::EngineDown)),
        })
        .collect();
    let final_prices = (0..store.len())
        .map(|i| store.record(quts_db::StockId(i as u32)).price())
        .collect();
    let pending_updates = tracker
        .missed_counts()
        .iter()
        .filter(|&&missed| missed > 0)
        .count() as u64;
    let final_stats = stats.lock().clone();
    VirtualRunReport {
        stats: final_stats,
        outcomes,
        trace: ring.map(|r| r.lock().iter_ordered().copied().collect()),
        final_prices,
        total_unapplied: tracker.total_unapplied(),
        pending_updates,
        end_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LivePolicy;
    use quts_db::{QueryOp, StockId, Trade};
    use quts_metrics::TraceConfig;
    use quts_qc::QualityContract;
    use quts_sim::{SimDuration, SimTime};
    use std::time::Duration;

    fn qspec(at_ms: u64, stock: u32, qos: f64, qod: f64) -> QuerySpec {
        QuerySpec {
            arrival: SimTime::from_ms(at_ms),
            op: QueryOp::Lookup(StockId(stock)),
            cost: SimDuration::from_ms(7),
            qc: QualityContract::step(qos, 1000.0, qod, 1),
        }
    }

    fn uspec(at_ms: u64, stock: u32, price: f64) -> UpdateSpec {
        UpdateSpec {
            arrival: SimTime::from_ms(at_ms),
            trade: Trade {
                stock: StockId(stock),
                price,
                volume: 1,
                trade_time_ms: 0,
            },
            cost: SimDuration::from_ms(3),
        }
    }

    fn conf() -> EngineConfig {
        EngineConfig {
            synthetic_query_cost: Some(Duration::from_millis(7)),
            synthetic_update_cost: None,
            ..EngineConfig::default()
        }
        .with_seed(99)
        .with_trace(TraceConfig::full())
    }

    #[test]
    fn virtual_run_is_bit_reproducible() {
        let queries: Vec<_> = (0..20)
            .map(|i| qspec(i * 3, i as u32 % 4, 10.0, 5.0))
            .collect();
        let updates: Vec<_> = (0..30)
            .map(|i| uspec(i * 2, i as u32 % 4, 50.0 + i as f64))
            .collect();
        let a = run_virtual(4, &queries, &updates, &conf());
        let b = run_virtual(4, &queries, &updates, &conf());
        assert_eq!(a.end_us, b.end_us);
        assert_eq!(a.final_prices, b.final_prices);
        assert_eq!(a.stats.adaptations, b.stats.adaptations);
        assert_eq!(a.stats.rho, b.stats.rho);
        let times = |r: &VirtualRunReport| {
            r.trace
                .as_ref()
                .unwrap()
                .iter()
                .map(|t| (t.at_us, t.event.kind()))
                .collect::<Vec<_>>()
        };
        assert_eq!(times(&a), times(&b));
        assert_eq!(a.outcomes.len(), 20);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.live_id, y.live_id);
            match (&x.reply, &y.reply) {
                (Ok(rx), Ok(ry)) => {
                    assert_eq!(rx.rt_ms, ry.rt_ms);
                    assert_eq!(rx.staleness, ry.staleness);
                    assert_eq!(rx.qos, ry.qos);
                    assert_eq!(rx.qod, ry.qod);
                }
                (Err(ex), Err(ey)) => assert_eq!(ex, ey),
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_trace_jsonl_is_byte_identical() {
        // The trace-annotated JSONL — ingest events carrying the
        // deterministic per-request trace ids included — is a pure
        // function of (trace, seed): two runs serialise to equal bytes.
        let queries: Vec<_> = (0..16)
            .map(|i| qspec(i * 3, i as u32 % 4, 10.0, 5.0))
            .collect();
        let updates: Vec<_> = (0..24)
            .map(|i| uspec(i * 2, i as u32 % 4, 50.0 + i as f64))
            .collect();
        let jsonl = || {
            let r = run_virtual(4, &queries, &updates, &conf());
            quts_metrics::records_to_jsonl(r.trace.as_ref().expect("traced run"))
        };
        let a = jsonl();
        assert!(
            a.lines().any(|l| l.contains("\"trace_id\":")),
            "ingest events must carry trace ids: {a}"
        );
        assert_eq!(a, jsonl(), "same-seed trace JSONL diverged");
    }

    #[test]
    fn virtual_run_drains_everything() {
        let queries: Vec<_> = (0..10)
            .map(|i| qspec(i * 5, i as u32 % 3, 8.0, 8.0))
            .collect();
        let updates: Vec<_> = (0..10)
            .map(|i| uspec(1 + i * 5, i as u32 % 3, 70.0))
            .collect();
        let r = run_virtual(3, &queries, &updates, &conf());
        assert_eq!(r.total_unapplied, 0, "a drained run owes no updates");
        assert_eq!(r.pending_updates, 0);
        assert_eq!(
            r.stats.aggregates.committed + r.stats.shed_expired,
            10,
            "every query resolves"
        );
        assert_eq!(
            r.stats.updates_applied + r.stats.updates_invalidated,
            10,
            "every update applies or is invalidated"
        );
        // Updates all landed: the last price of stock 0/1/2 is 70.
        for p in &r.final_prices {
            assert_eq!(*p, 70.0);
        }
    }

    #[test]
    fn policies_share_the_driver() {
        let queries: Vec<_> = (0..8)
            .map(|i| qspec(i * 4, i as u32 % 2, 6.0, 6.0))
            .collect();
        let updates: Vec<_> = (0..8).map(|i| uspec(i * 4, i as u32 % 2, 42.0)).collect();
        for policy in [
            LivePolicy::Fifo,
            LivePolicy::UpdateHigh,
            LivePolicy::QueryHigh,
            LivePolicy::Quts,
        ] {
            let r = run_virtual(2, &queries, &updates, &conf().with_policy(policy));
            assert_eq!(
                r.stats.aggregates.committed + r.stats.shed_expired,
                8,
                "{} resolves all queries",
                policy.label()
            );
            assert_eq!(r.total_unapplied, 0, "{} drains updates", policy.label());
        }
    }
}
