//! Engine configuration.

use crate::durability::DurabilityConfig;
use crate::fault::FaultPlan;
use quts_metrics::{FlightRecorderConfig, TraceConfig};
use quts_qc::StalenessAggregation;
use std::time::Duration;

/// Which scheduling policy the live engine's single worker runs.
///
/// QUTS (the default) is the paper's contribution; the fixed-priority
/// baselines exist so the conformance oracle can differentially check
/// the live engine against the simulator's implementation of the same
/// policy. All of them are non-preemptive in the live engine: a
/// dispatched transaction always finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LivePolicy {
    /// One global arrival order across both classes (updates win ties).
    Fifo,
    /// Updates strictly first; queries (VRD order) only when no update
    /// is pending.
    UpdateHigh,
    /// Queries (VRD order) strictly first; updates only when no query
    /// is pending.
    QueryHigh,
    /// The paper's two-level scheduler: ρ-biased atom draws with
    /// per-period ρ adaptation.
    #[default]
    Quts,
}

impl LivePolicy {
    /// Stable lower-case label (used in reports and trace file names).
    pub fn label(&self) -> &'static str {
        match self {
            LivePolicy::Fifo => "fifo",
            LivePolicy::UpdateHigh => "uh",
            LivePolicy::QueryHigh => "qh",
            LivePolicy::Quts => "quts",
        }
    }
}

/// Tuning of the live engine; defaults mirror the paper's system
/// parameters (τ = 10 ms, ω = 1000 ms).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Atom time τ: minimal interval between class-priority re-draws.
    pub tau: Duration,
    /// Adaptation period ω: how often ρ is re-optimised.
    pub omega: Duration,
    /// Aging factor α of the ρ smoothing.
    pub alpha: f64,
    /// ρ before the first adaptation.
    pub initial_rho: f64,
    /// Seed for the atom coin flips.
    pub seed: u64,
    /// Scheduling policy of the single worker; [`LivePolicy::Quts`] by
    /// default. The fixed-priority baselines disable the atom machinery.
    pub policy: LivePolicy,
    /// Conformance-harness knob: poisons the ρ controller with a flipped
    /// Eq. 4 clamp (see `RhoController::seed_flipped_clamp_mutation`).
    /// Exists so the differential oracle can prove it catches a broken
    /// scheduler; never set this outside that test.
    #[doc(hidden)]
    pub mutate_rho_clamp: bool,
    /// How multi-item query staleness aggregates.
    pub staleness_agg: StalenessAggregation,
    /// Artificial per-transaction CPU cost added on top of the real
    /// operator execution (busy-spin), to emulate the paper's millisecond
    /// service times in demos. `None` runs at native speed.
    pub synthetic_query_cost: Option<Duration>,
    /// As above, for updates.
    pub synthetic_update_cost: Option<Duration>,

    // --- Admission control & load shedding ---
    /// Capacity of the submission channel. Submissions beyond it fail
    /// with [`SubmitError::QueueFull`](crate::SubmitError) instead of
    /// growing memory without bound.
    pub queue_capacity: usize,
    /// High-water mark on queries admitted but not yet executed. At the
    /// mark the scheduler stops draining the submission channel, so
    /// backpressure reaches submitters as `QueueFull`.
    pub max_pending_queries: usize,
    /// High-water mark on distinct pending updates (the register table
    /// already collapses same-item bursts). At the mark the oldest
    /// pending update is dropped — its payload is the least valuable in
    /// the queue, and its item correctly stays accounted stale.
    pub max_pending_updates: usize,

    // --- Panic supervision ---
    /// Restart the scheduler over the surviving store after a panic
    /// (instead of poisoning the engine immediately).
    pub restart_on_panic: bool,
    /// Restart budget; a panic beyond it poisons the engine.
    pub max_restarts: u32,
    /// Base delay before the first restart; doubles per attempt, capped
    /// at one second.
    pub restart_backoff: Duration,

    // --- Durability ---
    /// Write-ahead logging + snapshots. `None` (the default) runs the
    /// engine purely in memory, as the paper does; `Some` appends every
    /// accepted update to a WAL before enqueue and publishes periodic
    /// snapshots, so [`Engine::recover`](crate::Engine::recover) and the
    /// supervisor restart path can rebuild the store *and* the pending
    /// update queue — post-crash `#uu` never under-reports.
    pub durability: Option<DurabilityConfig>,

    /// Injected faults for chaos tests; the default plan injects
    /// nothing.
    pub fault: FaultPlan,

    /// Observability level: `Off` (default) records nothing, `Spans`
    /// feeds the lifecycle histograms in [`LiveStats`](crate::LiveStats),
    /// `Full` additionally keeps per-decision events in a bounded ring
    /// readable through
    /// [`EngineHandle::trace_snapshot`](crate::EngineHandle::trace_snapshot).
    pub trace: TraceConfig,

    /// Crash flight recorder: a bounded ring of recent events plus
    /// coarse timeseries (queue depth, ρ, replica lag, group-commit
    /// batch size, profit rate) that the supervisor dumps to
    /// `<dir>/flightrec-<ts>.jsonl` on panic, poison or fail-stop.
    /// `None` (the default) records nothing and costs nothing.
    pub flight: Option<FlightRecorderConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tau: Duration::from_millis(10),
            omega: Duration::from_millis(1000),
            alpha: 0.2,
            initial_rho: 0.75,
            seed: 0x5157_5453,
            policy: LivePolicy::default(),
            mutate_rho_clamp: false,
            staleness_agg: StalenessAggregation::Max,
            synthetic_query_cost: None,
            synthetic_update_cost: None,
            queue_capacity: 1024,
            max_pending_queries: 4096,
            max_pending_updates: 16384,
            restart_on_panic: false,
            max_restarts: 4,
            restart_backoff: Duration::from_millis(10),
            durability: None,
            fault: FaultPlan::default(),
            trace: TraceConfig::default(),
            flight: None,
        }
    }
}

impl EngineConfig {
    /// Builder: synthetic service costs emulating the paper's trace
    /// (query ≈ 7 ms, update ≈ 3 ms).
    pub fn with_paper_costs(mut self) -> Self {
        self.synthetic_query_cost = Some(Duration::from_millis(7));
        self.synthetic_update_cost = Some(Duration::from_millis(3));
        self
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the scheduling policy.
    pub fn with_policy(mut self, policy: LivePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: seeds the flipped-clamp ρ mutation (conformance
    /// self-test only; see [`EngineConfig::mutate_rho_clamp`]).
    #[doc(hidden)]
    pub fn with_mutated_rho_clamp(mut self) -> Self {
        self.mutate_rho_clamp = true;
        self
    }

    /// Builder: sets τ.
    pub fn with_tau(mut self, tau: Duration) -> Self {
        self.tau = tau;
        self
    }

    /// Builder: sets ω.
    pub fn with_omega(mut self, omega: Duration) -> Self {
        self.omega = omega;
        self
    }

    /// Builder: sets the submission channel capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Builder: sets the pending-query high-water mark.
    pub fn with_max_pending_queries(mut self, cap: usize) -> Self {
        assert!(cap > 0, "pending-query cap must be positive");
        self.max_pending_queries = cap;
        self
    }

    /// Builder: sets the pending-update high-water mark.
    pub fn with_max_pending_updates(mut self, cap: usize) -> Self {
        assert!(cap > 0, "pending-update cap must be positive");
        self.max_pending_updates = cap;
        self
    }

    /// Builder: enables panic restarts with the given budget.
    pub fn with_restart_on_panic(mut self, max_restarts: u32) -> Self {
        self.restart_on_panic = true;
        self.max_restarts = max_restarts;
        self
    }

    /// Builder: sets the base restart backoff.
    pub fn with_restart_backoff(mut self, base: Duration) -> Self {
        self.restart_backoff = base;
        self
    }

    /// Builder: enables durability (WAL + snapshots) over a directory.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Builder: installs a fault-injection plan.
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Builder: sets the observability level.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: arms the crash flight recorder.
    pub fn with_flight_recorder(mut self, flight: FlightRecorderConfig) -> Self {
        self.flight = Some(flight);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.tau, Duration::from_millis(10));
        assert_eq!(c.omega, Duration::from_millis(1000));
        assert!(c.synthetic_query_cost.is_none());
    }

    #[test]
    fn tracing_defaults_off_and_is_a_builder_knob() {
        use quts_metrics::TraceLevel;
        let c = EngineConfig::default();
        assert_eq!(c.trace.level, TraceLevel::Off);
        let c = c.with_trace(TraceConfig::full());
        assert_eq!(c.trace.level, TraceLevel::Full);
    }

    #[test]
    fn policy_knob_defaults_to_quts() {
        let c = EngineConfig::default();
        assert_eq!(c.policy, LivePolicy::Quts);
        assert!(!c.mutate_rho_clamp);
        assert_eq!(c.policy.label(), "quts");
        let c = c.with_policy(LivePolicy::UpdateHigh);
        assert_eq!(c.policy, LivePolicy::UpdateHigh);
        assert_eq!(
            [
                LivePolicy::Fifo.label(),
                LivePolicy::UpdateHigh.label(),
                LivePolicy::QueryHigh.label(),
            ],
            ["fifo", "uh", "qh"]
        );
    }

    #[test]
    fn defaults_are_hardened_but_fault_free() {
        let c = EngineConfig::default();
        assert!(c.queue_capacity > 0);
        assert!(c.max_pending_queries >= c.queue_capacity);
        assert!(!c.restart_on_panic, "restarts are opt-in");
        assert!(c.fault.is_noop(), "no faults unless asked");
        assert!(c.durability.is_none(), "durability is opt-in");
        assert!(c.flight.is_none(), "flight recorder is opt-in");
    }

    #[test]
    fn flight_recorder_builder() {
        let c = EngineConfig::default().with_flight_recorder(
            FlightRecorderConfig::new("/tmp/quts-fr")
                .with_capacity(128)
                .with_resolution_us(500_000),
        );
        let f = c.flight.expect("recorder armed");
        assert_eq!(f.capacity, 128);
        assert_eq!(f.resolution_us, 500_000);
    }

    #[test]
    fn durability_builder_and_defaults() {
        use quts_db::FsyncPolicy;
        let d = DurabilityConfig::new("/tmp/quts-x");
        assert_eq!(d.fsync, FsyncPolicy::EveryN(64));
        assert_eq!(d.snapshot_every, 4096);
        let c = EngineConfig::default()
            .with_durability(d.with_fsync(FsyncPolicy::Always).with_snapshot_every(10));
        let d = c.durability.expect("durability set");
        assert_eq!(d.fsync, FsyncPolicy::Always);
        assert_eq!(d.snapshot_every, 10);
    }

    #[test]
    fn robustness_builders() {
        let c = EngineConfig::default()
            .with_queue_capacity(8)
            .with_max_pending_queries(16)
            .with_max_pending_updates(32)
            .with_restart_on_panic(2)
            .with_restart_backoff(Duration::from_millis(1))
            .with_fault_plan(FaultPlan::default().panic_after(5));
        assert_eq!(c.queue_capacity, 8);
        assert_eq!(c.max_pending_queries, 16);
        assert_eq!(c.max_pending_updates, 32);
        assert!(c.restart_on_panic);
        assert_eq!(c.max_restarts, 2);
        assert_eq!(c.restart_backoff, Duration::from_millis(1));
        assert_eq!(c.fault.panic_after_txns, Some(5));
    }

    #[test]
    fn builders() {
        let c = EngineConfig::default()
            .with_paper_costs()
            .with_seed(1)
            .with_tau(Duration::from_millis(5))
            .with_omega(Duration::from_millis(500));
        assert_eq!(c.synthetic_query_cost, Some(Duration::from_millis(7)));
        assert_eq!(c.synthetic_update_cost, Some(Duration::from_millis(3)));
        assert_eq!(c.seed, 1);
        assert_eq!(c.tau, Duration::from_millis(5));
        assert_eq!(c.omega, Duration::from_millis(500));
    }
}
