//! Engine configuration.

use quts_qc::StalenessAggregation;
use std::time::Duration;

/// Tuning of the live engine; defaults mirror the paper's system
/// parameters (τ = 10 ms, ω = 1000 ms).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Atom time τ: minimal interval between class-priority re-draws.
    pub tau: Duration,
    /// Adaptation period ω: how often ρ is re-optimised.
    pub omega: Duration,
    /// Aging factor α of the ρ smoothing.
    pub alpha: f64,
    /// ρ before the first adaptation.
    pub initial_rho: f64,
    /// Seed for the atom coin flips.
    pub seed: u64,
    /// How multi-item query staleness aggregates.
    pub staleness_agg: StalenessAggregation,
    /// Artificial per-transaction CPU cost added on top of the real
    /// operator execution (busy-spin), to emulate the paper's millisecond
    /// service times in demos. `None` runs at native speed.
    pub synthetic_query_cost: Option<Duration>,
    /// As above, for updates.
    pub synthetic_update_cost: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tau: Duration::from_millis(10),
            omega: Duration::from_millis(1000),
            alpha: 0.2,
            initial_rho: 0.75,
            seed: 0x5157_5453,
            staleness_agg: StalenessAggregation::Max,
            synthetic_query_cost: None,
            synthetic_update_cost: None,
        }
    }
}

impl EngineConfig {
    /// Builder: synthetic service costs emulating the paper's trace
    /// (query ≈ 7 ms, update ≈ 3 ms).
    pub fn with_paper_costs(mut self) -> Self {
        self.synthetic_query_cost = Some(Duration::from_millis(7));
        self.synthetic_update_cost = Some(Duration::from_millis(3));
        self
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets τ.
    pub fn with_tau(mut self, tau: Duration) -> Self {
        self.tau = tau;
        self
    }

    /// Builder: sets ω.
    pub fn with_omega(mut self, omega: Duration) -> Self {
        self.omega = omega;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.tau, Duration::from_millis(10));
        assert_eq!(c.omega, Duration::from_millis(1000));
        assert!(c.synthetic_query_cost.is_none());
    }

    #[test]
    fn builders() {
        let c = EngineConfig::default()
            .with_paper_costs()
            .with_seed(1)
            .with_tau(Duration::from_millis(5))
            .with_omega(Duration::from_millis(500));
        assert_eq!(c.synthetic_query_cost, Some(Duration::from_millis(7)));
        assert_eq!(c.synthetic_update_cost, Some(Duration::from_millis(3)));
        assert_eq!(c.seed, 1);
        assert_eq!(c.tau, Duration::from_millis(5));
        assert_eq!(c.omega, Duration::from_millis(500));
    }
}
