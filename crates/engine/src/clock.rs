//! Real or virtual time source for the engine runtime.
//!
//! The scheduler thread never reads `Instant::now()` directly; every
//! timestamp and every synthetic service-cost burn goes through an
//! [`EngineClock`]. In production the clock is backed by a wall-clock
//! epoch and burning CPU means busy-spinning (sleeping would free the
//! CPU and break the single-server model). Under the conformance
//! harness's virtual driver the clock is a plain counter that burning
//! advances instantly — which makes a live-engine run deterministic and
//! exactly comparable against the discrete-event simulator.

use std::time::{Duration, Instant};

/// Microsecond time source; see the module docs.
#[derive(Debug, Clone)]
pub(crate) enum EngineClock {
    /// Wall-clock time relative to an epoch captured at construction.
    Real { epoch: Instant },
    /// Manually advanced virtual time, starting at zero.
    Virtual { now_us: u64 },
}

impl EngineClock {
    /// A wall-clock source with the epoch at "now".
    pub(crate) fn real() -> EngineClock {
        EngineClock::Real {
            epoch: Instant::now(),
        }
    }

    /// A virtual source at time zero.
    pub(crate) fn virtual_at_zero() -> EngineClock {
        EngineClock::Virtual { now_us: 0 }
    }

    /// Microseconds since the epoch.
    pub(crate) fn now_us(&self) -> u64 {
        match self {
            EngineClock::Real { epoch } => epoch.elapsed().as_micros() as u64,
            EngineClock::Virtual { now_us } => *now_us,
        }
    }

    /// Microseconds from the epoch to `at` (zero if `at` predates it, as
    /// a query submitted before a panic restart can). Only meaningful on
    /// a real clock; virtual callers stamp microseconds directly.
    pub(crate) fn us_since_epoch(&self, at: Instant) -> u64 {
        match self {
            EngineClock::Real { epoch } => at.saturating_duration_since(*epoch).as_micros() as u64,
            EngineClock::Virtual { now_us } => *now_us,
        }
    }

    /// Jumps a virtual clock forward to `at_us`; no-op on a real clock
    /// (wall time advances itself) and never moves backwards.
    pub(crate) fn advance_to(&mut self, at_us: u64) {
        if let EngineClock::Virtual { now_us } = self {
            *now_us = (*now_us).max(at_us);
        }
    }

    /// Consumes `d` of CPU service time: busy-spins on a real clock,
    /// advances a virtual one.
    pub(crate) fn burn(&mut self, d: Duration) {
        match self {
            EngineClock::Real { .. } => spin_for(d),
            EngineClock::Virtual { now_us } => *now_us += d.as_micros() as u64,
        }
    }
}

/// Busy-spin for a duration (emulates CPU service demand; sleeping would
/// free the CPU and break the single-server model).
fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_deterministic() {
        let mut c = EngineClock::virtual_at_zero();
        assert_eq!(c.now_us(), 0);
        c.burn(Duration::from_millis(7));
        assert_eq!(c.now_us(), 7_000);
        c.advance_to(20_000);
        assert_eq!(c.now_us(), 20_000);
        // Never backwards.
        c.advance_to(5_000);
        assert_eq!(c.now_us(), 20_000);
    }

    #[test]
    fn real_clock_tracks_wall_time() {
        let c = EngineClock::real();
        let a = c.now_us();
        let mut c2 = c.clone();
        c2.burn(Duration::from_micros(500));
        assert!(c2.now_us() >= a + 500);
        // A stamp taken before the epoch saturates to zero.
        let old = Instant::now() - Duration::from_secs(10);
        assert_eq!(EngineClock::real().us_since_epoch(old), 0);
    }
}
