//! The calibrated Stock.com/NYSE-style trace generator.
//!
//! Produces a [`Trace`] matching the paper's Table 3 and Figure 5; see
//! the crate docs for the published-fact ↔ knob mapping. Scale the whole
//! workload down with [`StockWorkloadConfig::scaled`] for tests and
//! quick experiments — rates (and therefore the overload level, the key
//! driver of the scheduling results) are preserved.

use crate::arrivals::{arrivals_with_shape, declining_shape, jittered_flat_shape};
use crate::popularity::{PopularityMap, ZipfSampler};
use crate::trace::Trace;
use quts_db::{QueryOp, StockId, Trade};
use quts_qc::QualityContract;
use quts_sim::{QuerySpec, SimDuration, UpdateSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator knobs, defaulting to the paper's published workload.
///
/// ```
/// use quts_workload::StockWorkloadConfig;
///
/// // Two seconds of the paper's workload, same rates and overload level.
/// let trace = StockWorkloadConfig::paper_scaled_to(2.0).generate();
/// assert_eq!(trace.num_stocks, 4608); // the universe never shrinks
/// assert!(trace.queries.len() > 50);
/// assert!(trace.updates.len() > trace.queries.len()); // ~6x more updates
/// ```
#[derive(Debug, Clone)]
pub struct StockWorkloadConfig {
    /// Number of stocks (`Nd`); paper: 4,608.
    pub num_stocks: u32,
    /// Number of queries; paper: 82,129.
    pub num_queries: usize,
    /// Number of updates; paper: 496,892.
    pub num_updates: usize,
    /// Trace length in seconds; paper: 1,800 (9:30–10:00 am).
    pub horizon_s: f64,
    /// Query cost range in milliseconds; paper: 5–9 ms.
    pub query_cost_ms: (f64, f64),
    /// Update cost range in milliseconds; paper: 1–5 ms.
    pub update_cost_ms: (f64, f64),
    /// Zipf exponent of query popularity.
    pub query_zipf: f64,
    /// Zipf exponent of update popularity.
    pub update_zipf: f64,
    /// Signed rank correlation between update and query popularity:
    /// +1 = update-hot stocks avoid query-hot stocks, 0 = independent,
    /// -1 = the same stocks are hot in both classes (real market shape).
    pub anti_correlation: f64,
    /// End-of-trace update rate relative to the start (Fig 5b decline).
    pub update_rate_decline: f64,
    /// Query-rate jitter amplitude (Fig 5a "small changes").
    pub query_rate_jitter: f64,
    /// Probability of each query type: lookup, moving average, compare,
    /// portfolio (must sum to 1).
    pub query_mix: [f64; 4],
    /// Stocks accessed by compare/portfolio queries.
    pub multi_stock_range: (usize, usize),
    /// Second-scale flash crowds in the query stream ("the avalanche of
    /// queries from jittery investors").
    pub query_bursts: BurstModel,
    /// Second-scale trade surges in the update stream ("a tsunami of
    /// stock trades because of breaking news").
    pub update_bursts: BurstModel,
    /// Millisecond-scale clustering of trades on the same stock (one
    /// market order executing against several resting orders produces a
    /// run of near-simultaneous trades).
    pub trade_clustering: TradeClustering,
    /// Master RNG seed; the whole trace is a pure function of the config.
    pub seed: u64,
}

/// Random short-lived rate surges layered over the base arrival shape.
///
/// Web traffic is bursty at second scale; these transients are what make
/// the *fixed-priority* baselines fail — QH starves updates exactly while
/// most queries commit, UH starves queries during trade surges — and what
/// QUTS' probabilistic time-sharing rides out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Expected bursts per minute of trace.
    pub per_minute: f64,
    /// Burst duration range, in seconds.
    pub duration_s: (f64, f64),
    /// Rate multiplier range during a burst.
    pub intensity: (f64, f64),
}

/// Millisecond-scale same-stock trade clustering.
///
/// Real exchange feeds deliver runs of trades on one ticker within
/// milliseconds; all but the last collapse in the update register table
/// even under Update-High scheduling, which is what keeps the UH
/// baseline's effective update demand below CPU capacity (the paper's
/// FIFO-UH averages ~11.6 s query response times — a *bounded* backlog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeClustering {
    /// Mean trades per cluster (≥ 1; 1 disables clustering).
    pub mean_size: f64,
    /// Gap between consecutive trades of a cluster, in milliseconds.
    pub gap_ms: (f64, f64),
}

impl TradeClustering {
    /// No clustering: every trade is independent.
    pub fn none() -> Self {
        TradeClustering {
            mean_size: 1.0,
            gap_ms: (1.0, 1.0),
        }
    }
}

impl BurstModel {
    /// No bursts at all (smooth Poisson arrivals).
    pub fn none() -> Self {
        BurstModel {
            per_minute: 0.0,
            duration_s: (1.0, 1.0),
            intensity: (1.0, 1.0),
        }
    }

    /// Multiplies a per-second rate profile by sampled bursts.
    fn apply<R: RngExt + ?Sized>(&self, rng: &mut R, per_second: &mut [f64]) {
        let horizon_s = per_second.len() as f64;
        let expected = self.per_minute * horizon_s / 60.0;
        // Deterministic-count approximation of a Poisson number of bursts.
        let count = expected.floor() as usize + usize::from(rng.random::<f64>() < expected.fract());
        for _ in 0..count {
            let start = rng.random_range(0.0..horizon_s);
            let duration = rng.random_range(self.duration_s.0..=self.duration_s.1);
            let intensity = rng.random_range(self.intensity.0..=self.intensity.1);
            let lo = start as usize;
            let hi = ((start + duration).ceil() as usize).min(per_second.len());
            for x in &mut per_second[lo..hi] {
                *x *= intensity;
            }
        }
    }
}

impl Default for StockWorkloadConfig {
    fn default() -> Self {
        StockWorkloadConfig {
            num_stocks: 4_608,
            num_queries: 82_129,
            num_updates: 496_892,
            horizon_s: 1_800.0,
            query_cost_ms: (5.0, 9.0),
            update_cost_ms: (1.0, 5.0),
            query_zipf: 0.8,
            update_zipf: 0.9,
            anti_correlation: 0.0,
            update_rate_decline: 0.4,
            query_rate_jitter: 0.25,
            query_mix: [0.60, 0.20, 0.15, 0.05],
            multi_stock_range: (2, 5),
            query_bursts: BurstModel {
                per_minute: 0.55,
                duration_s: (10.0, 20.0),
                intensity: (2.8, 3.9),
            },
            update_bursts: BurstModel {
                per_minute: 0.5,
                duration_s: (2.0, 10.0),
                intensity: (2.0, 4.0),
            },
            trade_clustering: TradeClustering {
                mean_size: 1.25,
                gap_ms: (0.2, 3.0),
            },
            seed: 20000424, // the trace date
        }
    }
}

impl StockWorkloadConfig {
    /// Divides counts and horizon by `factor`, keeping all *rates* (and
    /// the overload level) intact. The stock universe is deliberately NOT
    /// shrunk: pending updates are capped at one per stock, so fewer
    /// stocks would cap the update backlog and destroy the staleness
    /// dynamics the experiments measure.
    ///
    /// # Panics
    /// Panics if `factor` is zero or would empty the workload.
    pub fn scaled(&self, factor: u32) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        let cfg = StockWorkloadConfig {
            num_queries: self.num_queries / factor as usize,
            num_updates: self.num_updates / factor as usize,
            horizon_s: self.horizon_s / factor as f64,
            ..self.clone()
        };
        assert!(
            cfg.num_queries > 0 && cfg.num_updates > 0 && cfg.horizon_s > 0.0,
            "scale factor {factor} empties the workload"
        );
        cfg
    }

    /// Convenience: the paper-scale workload shrunk to roughly
    /// `seconds` of trace (useful default for experiments that sweep
    /// many configurations).
    pub fn paper_scaled_to(seconds: f64) -> Self {
        let base = StockWorkloadConfig::default();
        let factor = (base.horizon_s / seconds).round().max(1.0) as u32;
        base.scaled(factor)
    }

    /// Offered CPU load: total service demand over the horizon, using
    /// mean costs. The paper's workload is ~1.15 (overloaded), which is
    /// what makes the scheduling choice matter.
    pub fn offered_load(&self) -> f64 {
        let q = self.num_queries as f64 * (self.query_cost_ms.0 + self.query_cost_ms.1) / 2.0;
        let u = self.num_updates as f64 * (self.update_cost_ms.0 + self.update_cost_ms.1) / 2.0;
        (q + u) / (self.horizon_s * 1000.0)
    }

    /// Generates the trace. Deterministic per configuration.
    pub fn generate(&self) -> Trace {
        assert!(self.num_stocks > 0, "need at least one stock");
        assert!(
            (self.query_mix.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "query mix must sum to 1"
        );
        assert!(self.query_cost_ms.0 <= self.query_cost_ms.1);
        assert!(self.update_cost_ms.0 <= self.update_cost_ms.1);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let popularity = PopularityMap::new(&mut rng, self.num_stocks, self.anti_correlation);
        let query_zipf = ZipfSampler::new(self.num_stocks as usize, self.query_zipf);
        let update_zipf = ZipfSampler::new(self.num_stocks as usize, self.update_zipf);

        // Arrival processes: a coarse per-segment base shape (like the
        // per-minute plots of Fig 5) refined to per-second resolution and
        // overlaid with flash-crowd bursts.
        let segments = 30;
        let q_base = jittered_flat_shape(&mut rng, segments, self.query_rate_jitter);
        let u_base = declining_shape(segments, 1.0, self.update_rate_decline);
        let seconds = (self.horizon_s.ceil() as usize).max(1);
        let refine = |base: &[f64]| -> Vec<f64> {
            (0..seconds)
                .map(|s| {
                    let seg = (s * base.len()) / seconds;
                    base[seg.min(base.len() - 1)]
                })
                .collect()
        };
        let mut q_shape = refine(&q_base);
        let mut u_shape = refine(&u_base);
        self.query_bursts.apply(&mut rng, &mut q_shape);
        self.update_bursts.apply(&mut rng, &mut u_shape);
        let q_times = arrivals_with_shape(&mut rng, self.num_queries, self.horizon_s, &q_shape);

        // Updates: cluster heads from the arrival process, expanded into
        // millisecond-scale same-stock runs, then a price random walk in
        // time order.
        let mean_cluster = self.trade_clustering.mean_size.max(1.0);
        let continue_p = 1.0 - 1.0 / mean_cluster;
        let n_heads = ((self.num_updates as f64 / mean_cluster).ceil() as usize)
            .clamp(1, self.num_updates.max(1));
        let head_times = arrivals_with_shape(&mut rng, n_heads, self.horizon_s, &u_shape);
        let mut events: Vec<(quts_sim::SimTime, StockId)> = Vec::with_capacity(self.num_updates);
        'outer: for head in head_times {
            let stock = popularity.update_stock(update_zipf.sample(&mut rng));
            let mut t = head;
            loop {
                events.push((t, stock));
                if events.len() == self.num_updates {
                    break 'outer;
                }
                if rng.random::<f64>() >= continue_p {
                    break;
                }
                let gap_ms = rng
                    .random_range(self.trade_clustering.gap_ms.0..=self.trade_clustering.gap_ms.1);
                t += SimDuration::from_ms_f64(gap_ms);
            }
        }
        if events.len() < self.num_updates {
            // Pad with independent singletons so the count is exact.
            let extra = arrivals_with_shape(
                &mut rng,
                self.num_updates - events.len(),
                self.horizon_s,
                &u_shape,
            );
            for t in extra {
                let stock = popularity.update_stock(update_zipf.sample(&mut rng));
                events.push((t, stock));
            }
        }
        events.sort_unstable_by_key(|&(t, s)| (t, s));

        let mut prices = vec![100.0f64; self.num_stocks as usize];
        let updates: Vec<UpdateSpec> = events
            .into_iter()
            .map(|(arrival, stock)| {
                let p = &mut prices[stock.index()];
                // ±0.5% step, floored away from zero.
                *p = (*p * (1.0 + 0.005 * (2.0 * rng.random::<f64>() - 1.0))).max(0.01);
                UpdateSpec {
                    arrival,
                    trade: Trade {
                        stock,
                        price: *p,
                        volume: rng.random_range(100..10_000),
                        trade_time_ms: arrival.as_micros() / 1000,
                    },
                    cost: SimDuration::from_ms_f64(
                        rng.random_range(self.update_cost_ms.0..=self.update_cost_ms.1),
                    ),
                }
            })
            .collect();

        // Queries: type mix over Zipf-popular stocks. Contracts start as
        // balanced placeholders; experiments overwrite them via
        // `qcgen::assign_qcs`.
        let queries: Vec<QuerySpec> = q_times
            .into_iter()
            .map(|arrival| {
                let pick = |rng: &mut StdRng| popularity.query_stock(query_zipf.sample(rng));
                let kind: f64 = rng.random();
                let op = if kind < self.query_mix[0] {
                    QueryOp::Lookup(pick(&mut rng))
                } else if kind < self.query_mix[0] + self.query_mix[1] {
                    QueryOp::MovingAverage {
                        stock: pick(&mut rng),
                        window: rng.random_range(4..32),
                    }
                } else {
                    let n = rng
                        .random_range(self.multi_stock_range.0..=self.multi_stock_range.1)
                        .min(self.num_stocks as usize);
                    let mut stocks = Vec::with_capacity(n);
                    while stocks.len() < n {
                        let s = pick(&mut rng);
                        if !stocks.contains(&s) {
                            stocks.push(s);
                        }
                    }
                    if kind < self.query_mix[0] + self.query_mix[1] + self.query_mix[2] {
                        QueryOp::Compare(stocks)
                    } else {
                        QueryOp::Portfolio(
                            stocks
                                .into_iter()
                                .map(|s| (s, rng.random_range(1.0..100.0)))
                                .collect(),
                        )
                    }
                };
                QuerySpec {
                    arrival,
                    op,
                    cost: SimDuration::from_ms_f64(
                        rng.random_range(self.query_cost_ms.0..=self.query_cost_ms.1),
                    ),
                    qc: QualityContract::step(25.0, 75.0, 25.0, 1),
                }
            })
            .collect();

        Trace {
            num_stocks: self.num_stocks,
            queries,
            updates,
        }
    }
}

/// The set of stocks a query accesses, deduplicated (test helper and
/// analysis utility).
pub fn accessed_stocks(op: &QueryOp) -> Vec<StockId> {
    let mut items = op.accessed_items().to_vec();
    items.sort_unstable();
    items.dedup();
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StockWorkloadConfig {
        StockWorkloadConfig {
            num_stocks: 64,
            num_queries: 500,
            num_updates: 3000,
            horizon_s: 10.0,
            seed: 7,
            ..StockWorkloadConfig::default()
        }
    }

    #[test]
    fn counts_match_config() {
        let t = small().generate();
        assert_eq!(t.queries.len(), 500);
        assert_eq!(t.updates.len(), 3000);
        assert_eq!(t.num_stocks, 64);
    }

    #[test]
    fn traces_are_sorted_and_in_horizon() {
        let t = small().generate();
        assert!(t.queries.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t.updates.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t.horizon().as_secs_f64() < 10.0);
    }

    #[test]
    fn costs_are_in_published_ranges() {
        let t = small().generate();
        for q in &t.queries {
            let ms = q.cost.as_ms_f64();
            assert!((5.0..=9.0).contains(&ms), "query cost {ms}");
        }
        for u in &t.updates {
            let ms = u.cost.as_ms_f64();
            assert!((1.0..=5.0).contains(&ms), "update cost {ms}");
        }
    }

    #[test]
    fn stocks_are_in_range() {
        let t = small().generate();
        for q in &t.queries {
            for &s in q.op.accessed_items().iter() {
                assert!(s.index() < 64);
            }
        }
        for u in &t.updates {
            assert!(u.trade.stock.index() < 64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.op, y.op);
            assert_eq!(x.cost, y.cost);
        }
        for (x, y) in a.updates.iter().zip(&b.updates) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.trade.stock, y.trade.stock);
        }
    }

    #[test]
    fn paper_default_is_overloaded() {
        let load = StockWorkloadConfig::default().offered_load();
        // 82129*7ms + 496892*3ms over 1800s ≈ 1.15.
        assert!(load > 1.05 && load < 1.25, "offered load {load}");
    }

    #[test]
    fn scaled_preserves_load() {
        let base = StockWorkloadConfig::default();
        let s = base.scaled(60);
        assert!((s.offered_load() - base.offered_load()).abs() < 0.02);
        assert_eq!(s.num_queries, base.num_queries / 60);
    }

    #[test]
    fn update_rate_declines_over_trace() {
        // Bursts and clustering off: this test checks the base shape.
        let t = StockWorkloadConfig {
            num_updates: 30_000,
            update_bursts: BurstModel::none(),
            trade_clustering: TradeClustering::none(),
            ..small()
        }
        .generate();
        let horizon = 10.0;
        let first: usize = t
            .updates
            .iter()
            .filter(|u| u.arrival.as_secs_f64() < horizon / 2.0)
            .count();
        let second = t.updates.len() - first;
        assert!(
            first as f64 > second as f64 * 1.15,
            "no decline: {first} vs {second}"
        );
    }

    #[test]
    fn query_popularity_is_skewed() {
        let t = StockWorkloadConfig {
            num_queries: 5000,
            ..small()
        }
        .generate();
        let mut counts = vec![0u32; 64];
        for q in &t.queries {
            for &s in q.op.accessed_items().iter() {
                counts[s.index()] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top8: u32 = counts[..8].iter().sum();
        let total: u32 = counts.iter().sum();
        // Zipf(1) over 64 ranks: top-8 carry ~57% of mass.
        assert!(
            top8 as f64 > 0.4 * total as f64,
            "top-8 stocks only got {top8}/{total}"
        );
    }

    #[test]
    fn prices_are_positive_and_walk() {
        let t = small().generate();
        assert!(t.updates.iter().all(|u| u.trade.price > 0.0));
        // The walk actually moves.
        let first = t.updates.first().unwrap().trade.price;
        assert!(t
            .updates
            .iter()
            .any(|u| (u.trade.price - first).abs() > 1e-9));
    }

    #[test]
    #[should_panic(expected = "empties the workload")]
    fn over_scaling_rejected() {
        let _ = small().scaled(1000);
    }
}
