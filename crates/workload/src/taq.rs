//! Loading real trade data in TAQ-style CSV.
//!
//! The paper's update trace is the NYSE consolidated trades file for
//! April 24, 2000, obtained through WRDS (Wharton Research Data
//! Services). That data cannot be redistributed, but anyone with access
//! can export it in the ubiquitous TAQ CSV shape and replay the *real*
//! update stream through this reproduction:
//!
//! ```text
//! SYMBOL,DATE,TIME,PRICE,SIZE
//! IBM,20000424,09:30:00,110.5,300
//! AOL,20000424,09:30:00,55.875,1200
//! ...
//! ```
//!
//! [`TaqLoader`] maps ticker symbols to dense [`StockId`]s in order of
//! first appearance, converts exchange timestamps to trace-relative
//! simulation time, and assigns per-trade CPU costs from the configured
//! range (the paper's 1–5 ms). Combine the result with synthetic queries
//! over the same symbol universe via
//! [`StockWorkloadConfig`](crate::StockWorkloadConfig) or hand-built
//! query specs.

use quts_db::{StockId, Trade};
use quts_sim::{SimDuration, SimTime, UpdateSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::io::{self, BufRead};

/// Configuration for TAQ ingestion.
#[derive(Debug, Clone)]
pub struct TaqLoader {
    /// CPU cost range per update, milliseconds (paper: 1–5 ms).
    pub cost_ms: (f64, f64),
    /// Seed for the cost draws.
    pub seed: u64,
    /// Trades strictly before this wall-clock time are skipped
    /// (`HH:MM:SS`; the paper keeps 09:30:00–10:00:00).
    pub start_time: Option<String>,
    /// Trades at or after this wall-clock time are skipped.
    pub end_time: Option<String>,
}

impl Default for TaqLoader {
    fn default() -> Self {
        TaqLoader {
            cost_ms: (1.0, 5.0),
            seed: 0x7451,
            start_time: None,
            end_time: None,
        }
    }
}

/// The result of loading a TAQ file.
#[derive(Debug, Clone)]
pub struct TaqUpdates {
    /// The update trace, sorted by arrival, starting at time zero.
    pub updates: Vec<UpdateSpec>,
    /// Symbol table: index = [`StockId`] value.
    pub symbols: Vec<String>,
}

impl TaqUpdates {
    /// Number of distinct symbols (the store size the trace needs).
    pub fn num_stocks(&self) -> u32 {
        self.symbols.len() as u32
    }

    /// The id assigned to a symbol, if it appeared.
    pub fn id_of(&self, symbol: &str) -> Option<StockId> {
        self.symbols
            .iter()
            .position(|s| s == symbol)
            .map(|i| StockId(i as u32))
    }
}

impl TaqLoader {
    /// Restricts loading to the paper's 9:30–10:00 am window.
    pub fn paper_window(mut self) -> Self {
        self.start_time = Some("09:30:00".into());
        self.end_time = Some("10:00:00".into());
        self
    }

    /// Parses TAQ-style CSV. Lines starting with `SYMBOL` or `#` are
    /// treated as headers/comments.
    ///
    /// # Errors
    /// Fails on malformed rows (wrong field count, unparseable time,
    /// price, or size) and on out-of-order timestamps within the file.
    pub fn load<R: BufRead>(&self, reader: R) -> io::Result<TaqUpdates> {
        let start = self
            .start_time
            .as_deref()
            .map(parse_hms)
            .transpose()?
            .unwrap_or(0);
        let end = self
            .end_time
            .as_deref()
            .map(parse_hms)
            .transpose()?
            .unwrap_or(u64::MAX);
        if start >= end {
            return Err(bad("start_time must precede end_time"));
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut symbols: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut rows: Vec<(u64, u32, f64, u64)> = Vec::new();

        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("SYMBOL") {
                continue;
            }
            let f: Vec<&str> = trimmed.split(',').collect();
            if f.len() != 5 {
                return Err(bad(&format!(
                    "line {}: expected 5 fields, got {}",
                    lineno + 1,
                    f.len()
                )));
            }
            let t_s =
                parse_hms(f[2].trim()).map_err(|e| bad(&format!("line {}: {e}", lineno + 1)))?;
            if t_s < start || t_s >= end {
                continue;
            }
            let price: f64 = f[3]
                .trim()
                .parse()
                .map_err(|_| bad(&format!("line {}: bad price {:?}", lineno + 1, f[3])))?;
            if !(price.is_finite() && price > 0.0) {
                return Err(bad(&format!("line {}: non-positive price", lineno + 1)));
            }
            let size: u64 = f[4]
                .trim()
                .parse()
                .map_err(|_| bad(&format!("line {}: bad size {:?}", lineno + 1, f[4])))?;
            let symbol = f[0].trim().to_string();
            let id = *index.entry(symbol.clone()).or_insert_with(|| {
                symbols.push(symbol);
                (symbols.len() - 1) as u32
            });
            rows.push((t_s, id, price, size));
        }

        // TAQ files are time-ordered; trades within the same second get
        // deterministic sub-second offsets to avoid pile-ups at second
        // boundaries.
        if !rows.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err(bad("trades are not in time order"));
        }
        let base = rows.first().map(|r| r.0).unwrap_or(start.min(end));
        let mut per_second: HashMap<u64, u32> = HashMap::new();
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for &(t_s, ..) in &rows {
            *counts.entry(t_s).or_default() += 1;
        }

        let updates = rows
            .into_iter()
            .map(|(t_s, id, price, size)| {
                let k = per_second.entry(t_s).or_default();
                let n = counts[&t_s] as u64;
                let offset_us = (*k as u64) * 1_000_000 / n;
                *k += 1;
                let arrival = SimTime((t_s - base) * 1_000_000 + offset_us);
                UpdateSpec {
                    arrival,
                    cost: SimDuration::from_ms_f64(
                        rng.random_range(self.cost_ms.0..=self.cost_ms.1),
                    ),
                    trade: Trade {
                        stock: StockId(id),
                        price,
                        volume: size,
                        trade_time_ms: arrival.as_micros() / 1000,
                    },
                }
            })
            .collect();

        Ok(TaqUpdates { updates, symbols })
    }
}

fn parse_hms(s: &str) -> io::Result<u64> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return Err(bad(&format!("bad time {s:?} (want HH:MM:SS)")));
    }
    let h: u64 = parts[0].parse().map_err(|_| bad("bad hour"))?;
    let m: u64 = parts[1].parse().map_err(|_| bad("bad minute"))?;
    let sec: u64 = parts[2].parse().map_err(|_| bad("bad second"))?;
    if h > 23 || m > 59 || sec > 59 {
        return Err(bad(&format!("time {s:?} out of range")));
    }
    Ok(h * 3600 + m * 60 + sec)
}

fn bad(msg: &str) -> io::Error {
    io::Error::other(msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
SYMBOL,DATE,TIME,PRICE,SIZE
IBM,20000424,09:30:00,110.5,300
AOL,20000424,09:30:00,55.875,1200
IBM,20000424,09:30:01,110.625,500
GE,20000424,09:30:02,52.0,1000
AOL,20000424,10:00:00,56.0,100
";

    #[test]
    fn loads_and_maps_symbols() {
        let out = TaqLoader::default().load(SAMPLE.as_bytes()).unwrap();
        assert_eq!(out.symbols, vec!["IBM", "AOL", "GE"]);
        assert_eq!(out.num_stocks(), 3);
        assert_eq!(out.id_of("GE"), Some(StockId(2)));
        assert_eq!(out.id_of("MSFT"), None);
        assert_eq!(out.updates.len(), 5);
    }

    #[test]
    fn times_are_relative_and_sorted() {
        let out = TaqLoader::default().load(SAMPLE.as_bytes()).unwrap();
        assert_eq!(out.updates[0].arrival, SimTime::ZERO);
        assert!(out.updates.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Second trade of 09:30:00 is offset within the second.
        assert!(out.updates[1].arrival > SimTime::ZERO);
        assert!(out.updates[1].arrival < SimTime::from_secs(1));
        // 09:30:01 maps to t = 1 s.
        assert_eq!(out.updates[2].arrival, SimTime::from_secs(1));
    }

    #[test]
    fn paper_window_excludes_the_close() {
        let out = TaqLoader::default()
            .paper_window()
            .load(SAMPLE.as_bytes())
            .unwrap();
        // The 10:00:00 trade is excluded (end-exclusive window).
        assert_eq!(out.updates.len(), 4);
    }

    #[test]
    fn costs_in_range_and_deterministic() {
        let a = TaqLoader::default().load(SAMPLE.as_bytes()).unwrap();
        let b = TaqLoader::default().load(SAMPLE.as_bytes()).unwrap();
        for (x, y) in a.updates.iter().zip(&b.updates) {
            assert_eq!(x.cost, y.cost);
            let ms = x.cost.as_ms_f64();
            assert!((1.0..=5.0).contains(&ms));
        }
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(TaqLoader::default()
            .load("IBM,20000424,09:30:00,110.5".as_bytes())
            .is_err());
        assert!(TaqLoader::default()
            .load("IBM,20000424,93000,110.5,300".as_bytes())
            .is_err());
        assert!(TaqLoader::default()
            .load("IBM,20000424,09:30:00,zero,300".as_bytes())
            .is_err());
        assert!(TaqLoader::default()
            .load("IBM,20000424,09:30:00,-5.0,300".as_bytes())
            .is_err());
        assert!(TaqLoader::default()
            .load("IBM,20000424,25:00:00,1.0,300".as_bytes())
            .is_err());
    }

    #[test]
    fn rejects_out_of_order_files() {
        let bad = "\
IBM,20000424,09:31:00,1.0,1
IBM,20000424,09:30:00,1.0,1
";
        assert!(TaqLoader::default().load(bad.as_bytes()).is_err());
    }

    #[test]
    fn loaded_updates_run_in_the_simulator() {
        use crate::qcgen::{assign_qcs, QcPreset, QcShape};
        use crate::trace::Trace;
        let out = TaqLoader::default().load(SAMPLE.as_bytes()).unwrap();
        // Synthetic queries over the TAQ symbol universe.
        let mut trace = Trace {
            num_stocks: out.num_stocks(),
            queries: (0..10)
                .map(|i| quts_sim::QuerySpec {
                    arrival: SimTime::from_ms(i * 100),
                    op: quts_db::QueryOp::Lookup(StockId((i % 3) as u32)),
                    cost: SimDuration::from_ms(5),
                    qc: quts_qc::QualityContract::step(1.0, 100.0, 1.0, 1),
                })
                .collect(),
            updates: out.updates,
        };
        assign_qcs(&mut trace, QcPreset::Balanced, QcShape::Step, 1);
        let report = quts_sim::Simulator::new(
            quts_sim::SimConfig::with_stocks(trace.num_stocks),
            trace.queries,
            trace.updates,
            quts_sched::GlobalFifo::new(),
        )
        .run();
        assert_eq!(report.committed, 10);
        assert_eq!(report.updates_applied + report.updates_invalidated, 5);
    }
}
