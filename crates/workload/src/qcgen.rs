//! Quality Contract presets for the paper's experiments.
//!
//! Every experiment re-uses the same trace but changes how contracts are
//! drawn:
//!
//! * **Balanced** — Figure 6: `qosmax, qodmax ~ U[$10, $50]` (so
//!   `QOSmax% = QODmax% = 0.5`), `rtmax ~ U[50, 100] ms`, `uumax = 1`.
//! * **Spectrum(k)** — Table 4 / Figures 7–8: nine points with
//!   `QODmax% = k/10`, `qodmax ~ U[$10k, $10k+9]`,
//!   `qosmax ~ U[$10(10−k), $10(10−k)+9]`.
//! * **Phases** — Figure 9: the run is split into four equal intervals
//!   whose `qosmax:qodmax` ratio flips between 1:5 and 5:1, creating the
//!   sudden preference changes QUTS must adapt to.

use quts_qc::QualityContract;
use quts_sim::SimTime;
use rand::RngExt;

/// Step or linear contract shape (Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QcShape {
    /// Step functions: full profit strictly within the cutoff.
    #[default]
    Step,
    /// Linear decay to zero at the cutoff.
    Linear,
}

/// A distribution over Quality Contracts, parameterised by arrival time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QcPreset {
    /// Figure 6 setup: balanced QoS/QoD preferences.
    Balanced,
    /// Table 4 setup: `QODmax% = k/10` for `k ∈ 1..=9`.
    Spectrum {
        /// The spectrum point `k` (1 ⇒ QoD-light … 9 ⇒ QoD-heavy).
        k: u8,
    },
    /// Figure 9 setup: four phases alternating 1:5 / 5:1 QoS:QoD ratios.
    Phases,
}

impl QcPreset {
    /// The nine Table 4 presets in order (`QODmax%` 0.1 → 0.9).
    pub fn spectrum_points() -> impl Iterator<Item = QcPreset> {
        (1..=9).map(|k| QcPreset::Spectrum { k })
    }

    /// The nominal `QODmax%` of this preset (phase presets report the
    /// run-wide average, 0.5).
    pub fn qod_max_pct(&self) -> f64 {
        match self {
            QcPreset::Balanced | QcPreset::Phases => 0.5,
            QcPreset::Spectrum { k } => *k as f64 / 10.0,
        }
    }

    /// Draws one contract for a query arriving at `arrival` in a run of
    /// length `horizon`.
    ///
    /// # Panics
    /// Panics on `Spectrum { k }` with `k` outside `1..=9`.
    pub fn draw<R: RngExt + ?Sized>(
        &self,
        rng: &mut R,
        shape: QcShape,
        arrival: SimTime,
        horizon: SimTime,
    ) -> QualityContract {
        let rtmax = rng.random_range(50.0..100.0);
        let uumax = 1;
        let (qosmax, qodmax) = match self {
            QcPreset::Balanced => (rng.random_range(10.0..50.0), rng.random_range(10.0..50.0)),
            QcPreset::Spectrum { k } => {
                assert!((1..=9).contains(k), "spectrum point must be 1..=9");
                let k = *k as f64;
                let qod = rng.random_range(10.0 * k..10.0 * k + 10.0);
                let qos = rng.random_range(10.0 * (10.0 - k)..10.0 * (10.0 - k) + 10.0);
                (qos, qod)
            }
            QcPreset::Phases => {
                // Four equal intervals; ratio 1:5, 5:1, 1:5, 5:1.
                let h = horizon.as_micros().max(1);
                let phase = (arrival.as_micros().saturating_mul(4) / h).min(3);
                let hi = rng.random_range(50.0..100.0);
                let lo = hi / 5.0;
                if phase.is_multiple_of(2) {
                    (lo, hi) // QoD-heavy phases first, matching Fig 9b
                } else {
                    (hi, lo)
                }
            }
        };
        match shape {
            QcShape::Step => QualityContract::step(qosmax, rtmax, qodmax, uumax),
            QcShape::Linear => QualityContract::linear(qosmax, rtmax, qodmax, uumax),
        }
    }
}

/// Assigns contracts drawn from `preset` to every query of a trace,
/// deterministically per seed.
pub fn assign_qcs(trace: &mut crate::trace::Trace, preset: QcPreset, shape: QcShape, seed: u64) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let horizon = trace.horizon();
    for q in &mut trace.queries {
        q.qc = preset.draw(&mut rng, shape, q.arrival, horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    const H: SimTime = SimTime::from_secs(300);

    #[test]
    fn balanced_ranges() {
        let mut r = rng();
        for _ in 0..200 {
            let qc = QcPreset::Balanced.draw(&mut r, QcShape::Step, SimTime::ZERO, H);
            assert!((10.0..50.0).contains(&qc.qosmax()));
            assert!((10.0..50.0).contains(&qc.qodmax()));
            let rt = qc.rtmax_ms().unwrap();
            assert!((50.0..100.0).contains(&rt));
            // uumax = 1: any missed update forfeits QoD profit.
            assert_eq!(qc.qod_profit(1.0), 0.0);
            assert_eq!(qc.qod_profit(0.0), qc.qodmax());
        }
    }

    #[test]
    fn spectrum_matches_table4() {
        let mut r = rng();
        for k in 1u8..=9 {
            let p = QcPreset::Spectrum { k };
            assert!((p.qod_max_pct() - k as f64 / 10.0).abs() < 1e-12);
            for _ in 0..50 {
                let qc = p.draw(&mut r, QcShape::Step, SimTime::ZERO, H);
                let (lo_d, hi_d) = (10.0 * k as f64, 10.0 * k as f64 + 10.0);
                let (lo_s, hi_s) = (10.0 * (10 - k) as f64, 10.0 * (10 - k) as f64 + 10.0);
                assert!(qc.qodmax() >= lo_d && qc.qodmax() < hi_d);
                assert!(qc.qosmax() >= lo_s && qc.qosmax() < hi_s);
            }
        }
    }

    #[test]
    fn spectrum_percentages_average_out() {
        let mut r = rng();
        let p = QcPreset::Spectrum { k: 3 };
        let mut qos = 0.0;
        let mut qod = 0.0;
        for _ in 0..2000 {
            let qc = p.draw(&mut r, QcShape::Step, SimTime::ZERO, H);
            qos += qc.qosmax();
            qod += qc.qodmax();
        }
        let pct = qod / (qos + qod);
        assert!((pct - 0.3).abs() < 0.02, "QODmax% came out at {pct}");
    }

    #[test]
    fn phases_flip_preferences() {
        let mut r = rng();
        // Phase 0 (first quarter): QoD-heavy.
        let qc = QcPreset::Phases.draw(&mut r, QcShape::Step, SimTime::ZERO, H);
        assert!(qc.qodmax() > qc.qosmax());
        assert!((qc.qodmax() / qc.qosmax() - 5.0).abs() < 1e-9);
        // Phase 1 (second quarter): QoS-heavy.
        let qc = QcPreset::Phases.draw(&mut r, QcShape::Step, SimTime::from_secs(80), H);
        assert!(qc.qosmax() > qc.qodmax());
        // Phase 3 (last quarter): QoS-heavy again.
        let qc = QcPreset::Phases.draw(&mut r, QcShape::Step, SimTime::from_secs(299), H);
        assert!(qc.qosmax() > qc.qodmax());
    }

    #[test]
    fn linear_shape_produces_linear_fns() {
        let mut r = rng();
        let qc = QcPreset::Balanced.draw(&mut r, QcShape::Linear, SimTime::ZERO, H);
        let rt = qc.rtmax_ms().unwrap();
        let half = qc.qos_profit(rt / 2.0);
        assert!((half - qc.qosmax() / 2.0).abs() < 1e-9, "not linear");
    }

    #[test]
    fn assign_qcs_is_deterministic() {
        use crate::trace::Trace;
        use quts_db::QueryOp;
        use quts_db::StockId;
        use quts_sim::{QuerySpec, SimDuration};
        let mk = || Trace {
            num_stocks: 1,
            queries: (0..20)
                .map(|i| QuerySpec {
                    arrival: SimTime::from_ms(i * 10),
                    op: QueryOp::Lookup(StockId(0)),
                    cost: SimDuration::from_ms(5),
                    qc: QualityContract::step(1.0, 50.0, 1.0, 1),
                })
                .collect(),
            updates: vec![],
        };
        let mut a = mk();
        let mut b = mk();
        assign_qcs(&mut a, QcPreset::Balanced, QcShape::Step, 11);
        assign_qcs(&mut b, QcPreset::Balanced, QcShape::Step, 11);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.qc.qosmax(), y.qc.qosmax());
            assert_eq!(x.qc.qodmax(), y.qc.qodmax());
        }
    }

    #[test]
    #[should_panic(expected = "spectrum point")]
    fn bad_spectrum_point_rejected() {
        let _ = QcPreset::Spectrum { k: 0 }.draw(&mut rng(), QcShape::Step, SimTime::ZERO, H);
    }
}
