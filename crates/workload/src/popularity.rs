//! Item popularity: Zipf samplers and anti-correlated rankings.
//!
//! Figure 5c of the paper plots per-stock update frequency against query
//! frequency: both are heavily skewed (a few hot stocks dominate), most
//! points sit below the diagonal (more updates than queries), and "many
//! of the updates occur on the stocks with very few queries". We model
//! this with two Zipf distributions over *ranks* plus a configurable
//! anti-correlation between the query ranking and the update ranking of
//! each stock.

use quts_db::StockId;
use rand::RngExt;

/// Samples ranks `0..n` with probability ∝ `1 / (rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A Zipf sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed).
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero ranks (never true — `new` rejects
    /// that), kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank (0 = most popular).
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of a rank.
    pub fn mass(&self, rank: usize) -> f64 {
        let prev = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - prev
    }
}

/// Maps popularity *ranks* to stock ids for the two transaction classes.
///
/// Query ranks are assigned by a random permutation; update ranks blend
/// the query ranking with random noise under a signed correlation knob:
///
/// * `+1` — fully anti-correlated: the most-updated stock is the
///   least-queried one,
/// * `0` — independent rankings,
/// * `-1` — fully correlated: hot stocks are hot for both classes (the
///   usual shape of real market data, where heavily traded tickers are
///   also heavily watched).
#[derive(Debug, Clone)]
pub struct PopularityMap {
    query_rank_to_stock: Vec<StockId>,
    update_rank_to_stock: Vec<StockId>,
}

impl PopularityMap {
    /// Builds the two rankings over `n` stocks.
    ///
    /// # Panics
    /// Panics if `n` is zero or `anti_correlation` is outside `[-1, 1]`.
    pub fn new<R: RngExt + ?Sized>(rng: &mut R, n: u32, anti_correlation: f64) -> Self {
        assert!(n > 0, "need at least one stock");
        assert!(
            (-1.0..=1.0).contains(&anti_correlation),
            "anti-correlation must be in [-1, 1]"
        );
        // Query ranking: random permutation of the stocks.
        let mut query_rank_to_stock: Vec<StockId> = (0..n).map(StockId).collect();
        shuffle(rng, &mut query_rank_to_stock);

        // Stock → its query rank.
        let mut query_rank_of = vec![0usize; n as usize];
        for (rank, &s) in query_rank_to_stock.iter().enumerate() {
            query_rank_of[s.index()] = rank;
        }

        // Update ranking: order stocks by a score that grows with their
        // query *coldness* (positive knob) or *hotness* (negative knob),
        // blended with uniform noise.
        let strength = anti_correlation.abs();
        let mut scored: Vec<(f64, u32)> = (0..n)
            .map(|s| {
                let coldness = query_rank_of[s as usize] as f64 / n as f64;
                let signal = if anti_correlation >= 0.0 {
                    coldness
                } else {
                    1.0 - coldness
                };
                let noise: f64 = rng.random();
                (strength * signal + (1.0 - strength) * noise, s)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let update_rank_to_stock = scored.into_iter().map(|(_, s)| StockId(s)).collect();

        PopularityMap {
            query_rank_to_stock,
            update_rank_to_stock,
        }
    }

    /// The stock at a given query-popularity rank (0 = hottest).
    pub fn query_stock(&self, rank: usize) -> StockId {
        self.query_rank_to_stock[rank]
    }

    /// The stock at a given update-popularity rank (0 = hottest).
    pub fn update_stock(&self, rank: usize) -> StockId {
        self.update_rank_to_stock[rank]
    }

    /// Number of stocks.
    pub fn len(&self) -> usize {
        self.query_rank_to_stock.len()
    }

    /// Always false (construction rejects zero stocks).
    pub fn is_empty(&self) -> bool {
        self.query_rank_to_stock.is_empty()
    }
}

/// Fisher–Yates shuffle (avoids depending on rand's `SliceRandom`
/// across version churn).
fn shuffle<R: RngExt + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn zipf_masses_sum_to_one() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank0_dominates() {
        let z = ZipfSampler::new(1000, 1.0);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(10));
        assert!(z.mass(10) > z.mass(500));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.mass(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_skew() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = rng();
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 carries ~1/H(100) ≈ 19% of the mass.
        assert!(counts[0] > 8_000, "rank 0 sampled {}", counts[0]);
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
    }

    #[test]
    fn popularity_map_is_a_bijection() {
        let m = PopularityMap::new(&mut rng(), 50, 0.5);
        let mut q: Vec<u32> = (0..50).map(|r| m.query_stock(r).0).collect();
        let mut u: Vec<u32> = (0..50).map(|r| m.update_stock(r).0).collect();
        q.sort_unstable();
        u.sort_unstable();
        assert_eq!(q, (0..50).collect::<Vec<_>>());
        assert_eq!(u, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn full_anti_correlation_reverses_ranking() {
        let m = PopularityMap::new(&mut rng(), 20, 1.0);
        for rank in 0..20 {
            assert_eq!(m.update_stock(rank), m.query_stock(19 - rank));
        }
    }

    #[test]
    fn full_correlation_matches_rankings() {
        let m = PopularityMap::new(&mut rng(), 20, -1.0);
        for rank in 0..20 {
            assert_eq!(m.update_stock(rank), m.query_stock(rank));
        }
    }

    #[test]
    fn zero_anti_correlation_is_independent_ish() {
        // Not a strict statistical test: just check it is not the exact
        // reversal and the map is still a bijection.
        let m = PopularityMap::new(&mut rng(), 200, 0.0);
        let reversed = (0..200).all(|r| m.update_stock(r) == m.query_stock(199 - r));
        assert!(!reversed);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PopularityMap::new(&mut StdRng::seed_from_u64(5), 64, 0.7);
        let b = PopularityMap::new(&mut StdRng::seed_from_u64(5), 64, 0.7);
        assert_eq!(a.query_rank_to_stock, b.query_rank_to_stock);
        assert_eq!(a.update_rank_to_stock, b.update_rank_to_stock);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn zipf_samples_in_range(n in 1usize..500, s in 0.0..3.0f64, seed in 0u64..100) {
            let z = ZipfSampler::new(n, s);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn map_is_always_bijective(n in 1u32..300, a in -1.0..=1.0f64, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = PopularityMap::new(&mut rng, n, a);
            let mut seen = std::collections::HashSet::new();
            for r in 0..n as usize {
                prop_assert!(seen.insert(m.update_stock(r)));
            }
            prop_assert_eq!(seen.len(), n as usize);
        }
    }
}
