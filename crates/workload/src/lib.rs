//! # Workload generation and trace I/O
//!
//! The paper evaluates on proprietary traces: user queries from a stock
//! information web site ("Stock.com", April 24 2000, 9:30–10:00 am) and
//! the matching NYSE trades. Those traces cannot be redistributed, so
//! this crate generates *synthetic equivalents calibrated to every
//! statistic the paper publishes*:
//!
//! | Published fact (Table 3 / Fig 5) | Generator knob |
//! |---|---|
//! | 82,129 queries / 496,892 updates / 4,608 stocks / 30 min | [`StockWorkloadConfig`] counts & horizon |
//! | query cost 5–9 ms, update cost 1–5 ms | cost ranges |
//! | query rate ≈ flat with small changes (Fig 5a) | per-segment jitter |
//! | update rate declining through the half-hour (Fig 5b) | linear decline factor |
//! | most stocks have more updates than queries; updates concentrate on query-cold stocks (Fig 5c) | Zipf skews + anti-correlation |
//!
//! Modules: [`arrivals`] (non-homogeneous Poisson processes),
//! [`popularity`] (Zipf samplers and anti-correlated rankings),
//! [`stockgen`] (the calibrated trace generator), [`qcgen`] (Quality
//! Contract presets for every experiment), [`trace`] (the trace container
//! and CSV round-tripping), [`stats`] (trace characteristic summaries).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod popularity;
pub mod qcgen;
pub mod stats;
pub mod stockgen;
pub mod taq;
pub mod trace;

pub use qcgen::{QcPreset, QcShape};
pub use stats::TraceStats;
pub use stockgen::StockWorkloadConfig;
pub use taq::{TaqLoader, TaqUpdates};
pub use trace::Trace;
