//! Trace characteristic summaries — the data behind Table 3 and
//! Figure 5 of the paper.

use crate::trace::Trace;
use quts_metrics::BinnedSeries;

/// Aggregate statistics of one trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Number of queries.
    pub num_queries: usize,
    /// Number of updates.
    pub num_updates: usize,
    /// Number of stocks.
    pub num_stocks: u32,
    /// Trace length in seconds.
    pub horizon_s: f64,
    /// Query cost range observed, in ms.
    pub query_cost_ms: (f64, f64),
    /// Update cost range observed, in ms.
    pub update_cost_ms: (f64, f64),
    /// Queries per second, binned (Figure 5a).
    pub queries_per_second: Vec<u64>,
    /// Updates per second, binned (Figure 5b).
    pub updates_per_second: Vec<u64>,
    /// Per-stock `(query accesses, update count)` (Figure 5c).
    pub per_stock: Vec<(u64, u64)>,
    /// Offered CPU load (demand / horizon).
    pub offered_load: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    pub fn compute(trace: &Trace) -> Self {
        let horizon_s = trace.horizon().as_secs_f64().max(1e-9);
        let bin = 1_000_000; // 1 s in µs

        let mut q_series = BinnedSeries::new(bin);
        let mut q_cost = (f64::INFINITY, f64::NEG_INFINITY);
        let mut per_stock = vec![(0u64, 0u64); trace.num_stocks as usize];
        for q in &trace.queries {
            q_series.record_event(q.arrival.as_micros());
            let ms = q.cost.as_ms_f64();
            q_cost = (q_cost.0.min(ms), q_cost.1.max(ms));
            for &s in q.op.accessed_items().iter() {
                per_stock[s.index()].0 += 1;
            }
        }
        let mut u_series = BinnedSeries::new(bin);
        let mut u_cost = (f64::INFINITY, f64::NEG_INFINITY);
        for u in &trace.updates {
            u_series.record_event(u.arrival.as_micros());
            let ms = u.cost.as_ms_f64();
            u_cost = (u_cost.0.min(ms), u_cost.1.max(ms));
            per_stock[u.trade.stock.index()].1 += 1;
        }

        let demand_s = trace.query_demand().as_secs_f64() + trace.update_demand().as_secs_f64();

        TraceStats {
            num_queries: trace.queries.len(),
            num_updates: trace.updates.len(),
            num_stocks: trace.num_stocks,
            horizon_s,
            query_cost_ms: if trace.queries.is_empty() {
                (0.0, 0.0)
            } else {
                q_cost
            },
            update_cost_ms: if trace.updates.is_empty() {
                (0.0, 0.0)
            } else {
                u_cost
            },
            queries_per_second: q_series.counts().to_vec(),
            updates_per_second: u_series.counts().to_vec(),
            per_stock,
            offered_load: demand_s / horizon_s,
        }
    }

    /// Fraction of stocks with more updates than query accesses — the
    /// "most points are below the diagonal" observation of Figure 5c
    /// (computed over stocks touched by either class).
    pub fn below_diagonal_fraction(&self) -> f64 {
        let active: Vec<_> = self
            .per_stock
            .iter()
            .filter(|&&(q, u)| q > 0 || u > 0)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().filter(|&&&(q, u)| u > q).count() as f64 / active.len() as f64
    }

    /// Mean queries per second.
    pub fn mean_query_rate(&self) -> f64 {
        self.num_queries as f64 / self.horizon_s
    }

    /// Mean updates per second.
    pub fn mean_update_rate(&self) -> f64 {
        self.num_updates as f64 / self.horizon_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stockgen::StockWorkloadConfig;

    fn small_trace() -> Trace {
        StockWorkloadConfig {
            num_stocks: 64,
            num_queries: 1000,
            num_updates: 6000,
            horizon_s: 20.0,
            seed: 5,
            ..StockWorkloadConfig::default()
        }
        .generate()
    }

    #[test]
    fn counts_and_rates() {
        let t = small_trace();
        let s = TraceStats::compute(&t);
        assert_eq!(s.num_queries, 1000);
        assert_eq!(s.num_updates, 6000);
        assert_eq!(s.num_stocks, 64);
        assert!((s.mean_query_rate() - 1000.0 / s.horizon_s).abs() < 1e-9);
        assert_eq!(s.queries_per_second.iter().sum::<u64>(), 1000);
        assert_eq!(s.updates_per_second.iter().sum::<u64>(), 6000);
    }

    #[test]
    fn per_stock_totals() {
        let t = small_trace();
        let s = TraceStats::compute(&t);
        let total_updates: u64 = s.per_stock.iter().map(|&(_, u)| u).sum();
        assert_eq!(total_updates, 6000);
        // Query accesses ≥ queries (multi-stock ops count each item).
        let total_accesses: u64 = s.per_stock.iter().map(|&(q, _)| q).sum();
        assert!(total_accesses >= 1000);
    }

    #[test]
    fn updates_dominate_most_stocks() {
        // 6 updates per query on average: Figure 5c's below-diagonal
        // shape must emerge.
        let s = TraceStats::compute(&small_trace());
        assert!(
            s.below_diagonal_fraction() > 0.5,
            "below-diagonal fraction {}",
            s.below_diagonal_fraction()
        );
    }

    #[test]
    fn costs_within_config() {
        let s = TraceStats::compute(&small_trace());
        assert!(s.query_cost_ms.0 >= 5.0 && s.query_cost_ms.1 <= 9.0);
        assert!(s.update_cost_ms.0 >= 1.0 && s.update_cost_ms.1 <= 5.0);
        assert!(s.offered_load > 0.5);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&Trace {
            num_stocks: 4,
            ..Trace::default()
        });
        assert_eq!(s.num_queries, 0);
        assert_eq!(s.below_diagonal_fraction(), 0.0);
        assert_eq!(s.query_cost_ms, (0.0, 0.0));
    }
}
