//! The trace container and a plain-text (CSV) round-trip format.
//!
//! Traces are kept in the simulator's own [`QuerySpec`] / [`UpdateSpec`]
//! types. The CSV serialisation covers the four-parameter step/linear
//! Quality Contracts the paper's experiments use; richer piecewise
//! contracts are an in-memory-only feature.

use quts_db::{QueryOp, StockId, Trade};
use quts_qc::{ProfitFn, QualityContract};
use quts_sim::{QuerySpec, SimDuration, SimTime, UpdateSpec};
use std::io::{self, BufRead, Write};

/// A complete workload: both traces plus the store size they reference.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Number of data items (stocks) referenced.
    pub num_stocks: u32,
    /// Queries sorted by arrival.
    pub queries: Vec<QuerySpec>,
    /// Updates sorted by arrival.
    pub updates: Vec<UpdateSpec>,
}

impl Trace {
    /// Trace duration: the latest arrival.
    pub fn horizon(&self) -> SimTime {
        let q = self
            .queries
            .last()
            .map(|q| q.arrival)
            .unwrap_or(SimTime::ZERO);
        let u = self
            .updates
            .last()
            .map(|u| u.arrival)
            .unwrap_or(SimTime::ZERO);
        q.max(u)
    }

    /// Total CPU demand of all queries.
    pub fn query_demand(&self) -> SimDuration {
        SimDuration(self.queries.iter().map(|q| q.cost.as_micros()).sum())
    }

    /// Total CPU demand of all updates (before any invalidation savings).
    pub fn update_demand(&self) -> SimDuration {
        SimDuration(self.updates.iter().map(|u| u.cost.as_micros()).sum())
    }

    /// Writes the trace as line-oriented CSV (header line, then one line
    /// per transaction, queries and updates in separate sections).
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "#quts-trace v1 stocks={}", self.num_stocks)?;
        writeln!(w, "#queries {}", self.queries.len())?;
        for q in &self.queries {
            let (kind, stocks, extra) = encode_op(&q.op);
            let (shape, qosmax, rtmax, qodmax, uumax) = encode_qc(&q.qc)
                .ok_or_else(|| io::Error::other("only step/linear QCs serialise"))?;
            writeln!(
                w,
                "q,{},{},{},{},{},{},{},{},{},{}",
                q.arrival.as_micros(),
                q.cost.as_micros(),
                kind,
                stocks,
                extra,
                shape,
                fmt_f(qosmax),
                fmt_f(rtmax),
                fmt_f(qodmax),
                uumax,
            )?;
        }
        writeln!(w, "#updates {}", self.updates.len())?;
        for u in &self.updates {
            writeln!(
                w,
                "u,{},{},{},{},{}",
                u.arrival.as_micros(),
                u.cost.as_micros(),
                u.trade.stock.0,
                fmt_f(u.trade.price),
                u.trade.volume,
            )?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_csv`].
    pub fn read_csv<R: BufRead>(r: &mut R) -> io::Result<Trace> {
        let mut trace = Trace::default();
        for line in r.lines() {
            let line = line?;
            if let Some(rest) = line.strip_prefix("#quts-trace v1 stocks=") {
                trace.num_stocks = parse(rest)?;
            } else if line.starts_with('#') || line.is_empty() {
                continue;
            } else if let Some(rest) = line.strip_prefix("q,") {
                trace.queries.push(parse_query(rest)?);
            } else if let Some(rest) = line.strip_prefix("u,") {
                trace.updates.push(parse_update(rest)?);
            } else {
                return Err(bad(&format!("unrecognised line: {line}")));
            }
        }
        Ok(trace)
    }
}

fn fmt_f(x: f64) -> String {
    // Round-trippable compact float.
    format!("{x}")
}

fn encode_op(op: &QueryOp) -> (&'static str, String, String) {
    match op {
        QueryOp::Lookup(s) => ("L", s.0.to_string(), String::new()),
        QueryOp::MovingAverage { stock, window } => ("M", stock.0.to_string(), window.to_string()),
        QueryOp::Compare(stocks) => (
            "C",
            stocks
                .iter()
                .map(|s| s.0.to_string())
                .collect::<Vec<_>>()
                .join(";"),
            String::new(),
        ),
        QueryOp::Portfolio(pos) => (
            "P",
            pos.iter()
                .map(|(s, _)| s.0.to_string())
                .collect::<Vec<_>>()
                .join(";"),
            pos.iter()
                .map(|(_, w)| fmt_f(*w))
                .collect::<Vec<_>>()
                .join(";"),
        ),
    }
}

fn encode_qc(qc: &QualityContract) -> Option<(char, f64, f64, f64, u32)> {
    // Shape is shared between the two dimensions (the paper never mixes
    // step and linear inside one contract); `None` means not encodable.
    let (qos_shape, qosmax, rtmax) = match &qc.qos {
        ProfitFn::Step { max, cutoff } => (Some('s'), *max, *cutoff),
        ProfitFn::Linear { max, cutoff } => (Some('l'), *max, *cutoff),
        ProfitFn::Zero => (None, 0.0, 1.0),
        ProfitFn::Piecewise { .. } => return None,
    };
    let (qod_shape, qodmax, uumax) = match &qc.qod {
        ProfitFn::Step { max, cutoff } => (Some('s'), *max, *cutoff as u32),
        ProfitFn::Linear { max, cutoff } => (Some('l'), *max, *cutoff as u32),
        ProfitFn::Zero => (None, 0.0, 1),
        ProfitFn::Piecewise { .. } => return None,
    };
    let shape = match (qos_shape, qod_shape) {
        (Some(a), Some(b)) if a != b => return None, // mixed shapes
        (Some(a), _) => a,
        (None, Some(b)) => b,
        (None, None) => 's',
    };
    Some((shape, qosmax, rtmax, qodmax, uumax))
}

fn bad(msg: &str) -> io::Error {
    io::Error::other(msg.to_string())
}

fn parse<T: std::str::FromStr>(s: &str) -> io::Result<T> {
    s.trim()
        .parse()
        .map_err(|_| bad(&format!("bad field: {s:?}")))
}

fn parse_query(rest: &str) -> io::Result<QuerySpec> {
    let f: Vec<&str> = rest.split(',').collect();
    if f.len() != 10 {
        return Err(bad(&format!("query line needs 10 fields, got {}", f.len())));
    }
    let arrival = SimTime(parse(f[0])?);
    let cost = SimDuration(parse(f[1])?);
    let stocks: Vec<StockId> = if f[3].is_empty() {
        vec![]
    } else {
        f[3].split(';')
            .map(|s| parse::<u32>(s).map(StockId))
            .collect::<io::Result<_>>()?
    };
    let op = match f[2] {
        "L" => QueryOp::Lookup(*stocks.first().ok_or_else(|| bad("lookup needs a stock"))?),
        "M" => QueryOp::MovingAverage {
            stock: *stocks.first().ok_or_else(|| bad("avg needs a stock"))?,
            window: parse(f[4])?,
        },
        "C" => QueryOp::Compare(stocks),
        "P" => {
            let weights: Vec<f64> = f[4]
                .split(';')
                .map(parse::<f64>)
                .collect::<io::Result<_>>()?;
            if weights.len() != stocks.len() {
                return Err(bad("portfolio stocks/weights mismatch"));
            }
            QueryOp::Portfolio(stocks.into_iter().zip(weights).collect())
        }
        other => return Err(bad(&format!("unknown op kind {other:?}"))),
    };
    let qosmax: f64 = parse(f[6])?;
    let rtmax: f64 = parse(f[7])?;
    let qodmax: f64 = parse(f[8])?;
    let uumax: u32 = parse(f[9])?;
    let qc = match f[5] {
        "s" => QualityContract::step(qosmax, rtmax, qodmax, uumax),
        "l" => QualityContract::linear(qosmax, rtmax, qodmax, uumax),
        other => return Err(bad(&format!("unknown QC shape {other:?}"))),
    };
    Ok(QuerySpec {
        arrival,
        op,
        cost,
        qc,
    })
}

fn parse_update(rest: &str) -> io::Result<UpdateSpec> {
    let f: Vec<&str> = rest.split(',').collect();
    if f.len() != 5 {
        return Err(bad(&format!("update line needs 5 fields, got {}", f.len())));
    }
    let arrival = SimTime(parse(f[0])?);
    Ok(UpdateSpec {
        arrival,
        cost: SimDuration(parse(f[1])?),
        trade: Trade {
            stock: StockId(parse(f[2])?),
            price: parse(f[3])?,
            volume: parse(f[4])?,
            trade_time_ms: arrival.as_micros() / 1000,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            num_stocks: 4,
            queries: vec![
                QuerySpec {
                    arrival: SimTime::from_ms(1),
                    op: QueryOp::Lookup(StockId(0)),
                    cost: SimDuration::from_ms(5),
                    qc: QualityContract::step(10.0, 50.0, 20.0, 1),
                },
                QuerySpec {
                    arrival: SimTime::from_ms(2),
                    op: QueryOp::MovingAverage {
                        stock: StockId(1),
                        window: 8,
                    },
                    cost: SimDuration::from_ms(7),
                    qc: QualityContract::linear(5.5, 80.0, 1.25, 2),
                },
                QuerySpec {
                    arrival: SimTime::from_ms(3),
                    op: QueryOp::Compare(vec![StockId(0), StockId(2), StockId(3)]),
                    cost: SimDuration::from_ms(9),
                    qc: QualityContract::step(0.0, 1.0, 30.0, 3),
                },
                QuerySpec {
                    arrival: SimTime::from_ms(4),
                    op: QueryOp::Portfolio(vec![(StockId(1), 2.5), (StockId(2), 1.0)]),
                    cost: SimDuration::from_ms(6),
                    qc: QualityContract::step(7.0, 60.0, 0.0, 1),
                },
            ],
            updates: vec![UpdateSpec {
                arrival: SimTime::from_ms(1),
                cost: SimDuration::from_ms(3),
                trade: Trade {
                    stock: StockId(2),
                    price: 101.25,
                    volume: 500,
                    trade_time_ms: 1,
                },
            }],
        }
    }

    #[test]
    fn csv_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_stocks, 4);
        assert_eq!(back.queries.len(), 4);
        assert_eq!(back.updates.len(), 1);
        for (a, b) in t.queries.iter().zip(&back.queries) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.op, b.op);
            assert_eq!(a.qc.qosmax(), b.qc.qosmax());
            assert_eq!(a.qc.qodmax(), b.qc.qodmax());
            assert_eq!(a.qc.rtmax_ms(), b.qc.rtmax_ms());
        }
        assert_eq!(t.updates[0].trade.price, back.updates[0].trade.price);
        assert_eq!(t.updates[0].trade.stock, back.updates[0].trade.stock);
    }

    #[test]
    fn horizon_and_demand() {
        let t = sample_trace();
        assert_eq!(t.horizon(), SimTime::from_ms(4));
        assert_eq!(t.query_demand(), SimDuration::from_ms(27));
        assert_eq!(t.update_demand(), SimDuration::from_ms(3));
    }

    #[test]
    fn empty_trace_round_trip() {
        let t = Trace {
            num_stocks: 7,
            ..Trace::default()
        };
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_stocks, 7);
        assert!(back.queries.is_empty());
        assert!(back.updates.is_empty());
        assert_eq!(back.horizon(), SimTime::ZERO);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Trace::read_csv(&mut "nonsense line".as_bytes()).is_err());
        assert!(Trace::read_csv(&mut "q,1,2,3".as_bytes()).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = QueryOp> {
        prop_oneof![
            (0u32..64).prop_map(|s| QueryOp::Lookup(StockId(s))),
            (0u32..64, 1usize..64).prop_map(|(s, w)| QueryOp::MovingAverage {
                stock: StockId(s),
                window: w,
            }),
            proptest::collection::vec(0u32..64, 1..6)
                .prop_map(|v| QueryOp::Compare(v.into_iter().map(StockId).collect())),
            proptest::collection::vec((0u32..64, 0.5..100.0f64), 1..5).prop_map(|v| {
                QueryOp::Portfolio(v.into_iter().map(|(s, w)| (StockId(s), w)).collect())
            }),
        ]
    }

    fn arb_trace() -> impl Strategy<Value = Trace> {
        let queries = proptest::collection::vec(
            (
                0u64..1_000_000,
                arb_op(),
                100u64..20_000,
                0.0..99.0f64,
                1.0..500.0f64,
                0.0..99.0f64,
                1u32..10,
                proptest::bool::ANY,
            ),
            0..30,
        );
        let updates = proptest::collection::vec(
            (
                0u64..1_000_000,
                0u32..64,
                100u64..8_000,
                0.01..900.0f64,
                0u64..10_000,
            ),
            0..30,
        );
        (queries, updates).prop_map(|(qs, us)| {
            let mut queries: Vec<QuerySpec> = qs
                .into_iter()
                .map(|(us_t, op, cost, qos, rt, qod, uu, step)| QuerySpec {
                    arrival: SimTime(us_t),
                    op,
                    cost: SimDuration(cost),
                    qc: if step {
                        QualityContract::step(qos, rt, qod, uu)
                    } else {
                        QualityContract::linear(qos, rt, qod, uu)
                    },
                })
                .collect();
            queries.sort_by_key(|q| q.arrival);
            let mut updates: Vec<UpdateSpec> = us
                .into_iter()
                .map(|(us_t, stock, cost, price, volume)| UpdateSpec {
                    arrival: SimTime(us_t),
                    cost: SimDuration(cost),
                    trade: Trade {
                        stock: StockId(stock),
                        price,
                        volume,
                        trade_time_ms: us_t / 1000,
                    },
                })
                .collect();
            updates.sort_by_key(|u| u.arrival);
            Trace {
                num_stocks: 64,
                queries,
                updates,
            }
        })
    }

    proptest! {
        /// Any trace the generator can produce round-trips exactly
        /// through the CSV format.
        #[test]
        fn csv_round_trip_is_lossless(trace in arb_trace()) {
            let mut buf = Vec::new();
            trace.write_csv(&mut buf).unwrap();
            let back = Trace::read_csv(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(back.num_stocks, trace.num_stocks);
            prop_assert_eq!(back.queries.len(), trace.queries.len());
            prop_assert_eq!(back.updates.len(), trace.updates.len());
            for (a, b) in trace.queries.iter().zip(&back.queries) {
                prop_assert_eq!(a.arrival, b.arrival);
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(&a.op, &b.op);
                prop_assert_eq!(&a.qc, &b.qc);
            }
            for (a, b) in trace.updates.iter().zip(&back.updates) {
                prop_assert_eq!(a.arrival, b.arrival);
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.trade.stock, b.trade.stock);
                prop_assert_eq!(a.trade.price, b.trade.price);
                prop_assert_eq!(a.trade.volume, b.trade.volume);
            }
        }

        /// Truncated files never panic — they parse or error cleanly.
        #[test]
        fn truncation_never_panics(trace in arb_trace(), cut in 0usize..2_000) {
            let mut buf = Vec::new();
            trace.write_csv(&mut buf).unwrap();
            let cut = cut.min(buf.len());
            let _ = Trace::read_csv(&mut buf[..cut].as_ref());
        }
    }
}
