//! Arrival-time generation.
//!
//! Both traces are modelled as non-homogeneous Poisson processes with a
//! prescribed *rate shape*. Because the paper publishes exact transaction
//! counts, [`arrivals_with_shape`] uses the order-statistics property of
//! Poisson processes: conditioned on N arrivals in the horizon, arrival
//! times are N sorted draws from the density proportional to the rate
//! shape — so the generated trace hits the published count exactly while
//! following the published shape.

use quts_sim::SimTime;
use rand::RngExt;

/// Generates exactly `n` arrival times over `[0, horizon_s)` seconds
/// whose density follows the piecewise-constant `shape` (one weight per
/// equal-width segment; weights need not be normalised).
///
/// Returns times sorted ascending.
///
/// # Panics
/// Panics if `shape` is empty, has a non-positive total weight, or the
/// horizon is not positive.
pub fn arrivals_with_shape<R: RngExt + ?Sized>(
    rng: &mut R,
    n: usize,
    horizon_s: f64,
    shape: &[f64],
) -> Vec<SimTime> {
    assert!(!shape.is_empty(), "shape must have at least one segment");
    assert!(horizon_s > 0.0, "horizon must be positive");
    assert!(
        shape.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "segment weights must be finite and non-negative"
    );
    let total: f64 = shape.iter().sum();
    assert!(total > 0.0, "shape must have positive total weight");

    // Cumulative distribution over segments.
    let mut cdf = Vec::with_capacity(shape.len());
    let mut acc = 0.0;
    for &w in shape {
        acc += w;
        cdf.push(acc / total);
    }
    let seg_width = horizon_s / shape.len() as f64;

    let mut times: Vec<u64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            // Segment via inverse CDF, then uniform within the segment.
            let seg = cdf.partition_point(|&c| c < u).min(shape.len() - 1);
            let prev = if seg == 0 { 0.0 } else { cdf[seg - 1] };
            let within = if cdf[seg] > prev {
                (u - prev) / (cdf[seg] - prev)
            } else {
                rng.random()
            };
            let t_s = (seg as f64 + within) * seg_width;
            (t_s * 1e6) as u64
        })
        .collect();
    times.sort_unstable();
    times.into_iter().map(SimTime).collect()
}

/// Uniform-rate special case of [`arrivals_with_shape`].
pub fn uniform_arrivals<R: RngExt + ?Sized>(rng: &mut R, n: usize, horizon_s: f64) -> Vec<SimTime> {
    arrivals_with_shape(rng, n, horizon_s, &[1.0])
}

/// A rate shape that declines linearly from `start` to `end` relative
/// weight across `segments` segments — the paper's Figure 5b update
/// profile ("the intensity of the updates reduces during the second half
/// of the trace").
pub fn declining_shape(segments: usize, start: f64, end: f64) -> Vec<f64> {
    assert!(segments > 0);
    (0..segments)
        .map(|i| {
            let t = if segments == 1 {
                0.0
            } else {
                i as f64 / (segments - 1) as f64
            };
            start + (end - start) * t
        })
        .collect()
}

/// A near-flat shape with per-segment multiplicative jitter in
/// `[1-jitter, 1+jitter]` — the paper's Figure 5a query profile ("small
/// changes over time").
pub fn jittered_flat_shape<R: RngExt + ?Sized>(
    rng: &mut R,
    segments: usize,
    jitter: f64,
) -> Vec<f64> {
    assert!(segments > 0);
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    (0..segments)
        .map(|_| 1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn exact_count_and_sorted() {
        let times = uniform_arrivals(&mut rng(), 1000, 60.0);
        assert_eq!(times.len(), 1000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|t| t.as_secs_f64() < 60.0));
    }

    #[test]
    fn declining_shape_declines() {
        let s = declining_shape(10, 2.0, 1.0);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(s[0], 2.0);
        assert_eq!(s[9], 1.0);
    }

    #[test]
    fn declining_arrivals_have_more_mass_early() {
        let shape = declining_shape(30, 3.0, 1.0);
        let times = arrivals_with_shape(&mut rng(), 20_000, 100.0, &shape);
        let first_half = times.iter().filter(|t| t.as_secs_f64() < 50.0).count();
        // 3:1 linear decline → mean rate 2.5 vs 1.5 → 62.5% of arrivals
        // in the first half.
        assert!(
            first_half > 12_000 && first_half < 13_000,
            "first half got {first_half}"
        );
    }

    #[test]
    fn jittered_shape_is_near_flat() {
        let s = jittered_flat_shape(&mut rng(), 30, 0.2);
        assert!(s.iter().all(|&w| (0.8..=1.2).contains(&w)));
    }

    #[test]
    fn zero_arrivals_is_fine() {
        assert!(uniform_arrivals(&mut rng(), 0, 10.0).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_arrivals(&mut StdRng::seed_from_u64(1), 100, 10.0);
        let b = uniform_arrivals(&mut StdRng::seed_from_u64(1), 100, 10.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn all_zero_shape_rejected() {
        let _ = arrivals_with_shape(&mut rng(), 10, 10.0, &[0.0, 0.0]);
    }

    #[test]
    fn segment_with_zero_weight_gets_no_arrivals() {
        let times = arrivals_with_shape(&mut rng(), 5000, 10.0, &[1.0, 0.0]);
        assert!(times.iter().all(|t| t.as_secs_f64() < 5.0 + 1e-9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn within_horizon_and_sorted(
            seed in 0u64..1000,
            n in 0usize..500,
            horizon in 1.0..1000.0f64,
            segs in 1usize..20,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let shape: Vec<f64> = (0..segs).map(|i| 1.0 + (i % 3) as f64).collect();
            let times = arrivals_with_shape(&mut rng, n, horizon, &shape);
            prop_assert_eq!(times.len(), n);
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(times.iter().all(|t| t.as_secs_f64() < horizon));
        }
    }
}
