//! Transaction specifications (the trace) and their runtime state.

use crate::time::{SimDuration, SimTime};
use quts_db::{QueryOp, Trade};
use quts_qc::QualityContract;

/// Index of a query in the run's query trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

/// Index of an update in the run's update trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateId(pub u32);

impl QueryId {
    /// The id as a flat-vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UpdateId {
    /// The id as a flat-vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One read-only user query as it appears in the trace.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Arrival time.
    pub arrival: SimTime,
    /// What the query computes (also defines its read-lock set).
    pub op: QueryOp,
    /// CPU service demand (5–9 ms in the paper's trace).
    pub cost: SimDuration,
    /// The user's Quality Contract.
    pub qc: QualityContract,
}

/// One blind write-only update as it appears in the trace.
#[derive(Debug, Clone)]
pub struct UpdateSpec {
    /// Arrival time.
    pub arrival: SimTime,
    /// The trade to apply (stock, price, volume).
    pub trade: Trade,
    /// CPU service demand (1–5 ms in the paper's trace).
    pub cost: SimDuration,
}

/// Lifecycle of a transaction inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Not yet arrived.
    NotArrived,
    /// In a scheduler queue, holding no locks, full remaining cost.
    Queued,
    /// On the CPU.
    Running,
    /// Preempted mid-execution: back in a scheduler queue but still
    /// holding its locks and partial progress.
    Paused,
    /// Query committed / update applied.
    Committed,
    /// Query exceeded its lifetime and was aborted.
    Expired,
    /// Update superseded by a newer update on the same item and dropped.
    Invalidated,
}

impl TxnStatus {
    /// Whether the transaction is finished (no further state changes).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TxnStatus::Committed | TxnStatus::Expired | TxnStatus::Invalidated
        )
    }
}

/// Mutable per-query simulation state.
#[derive(Debug, Clone)]
pub struct QueryState {
    /// Lifecycle position.
    pub status: TxnStatus,
    /// CPU time still needed to commit.
    pub remaining: SimDuration,
    /// Absolute deadline after which the query earns nothing and is
    /// aborted (arrival + lifetime).
    pub expiry: SimTime,
    /// How many times 2PL-HP restarted this query.
    pub restarts: u32,
    /// Whether the query currently holds its read locks.
    pub holds_locks: bool,
}

/// Mutable per-update simulation state.
#[derive(Debug, Clone)]
pub struct UpdateState {
    /// Lifecycle position.
    pub status: TxnStatus,
    /// CPU time still needed to apply.
    pub remaining: SimDuration,
    /// How many times 2PL-HP restarted this update.
    pub restarts: u32,
    /// Whether the update currently holds its write lock.
    pub holds_locks: bool,
}

impl QueryState {
    /// Initial state for a query with the given cost and expiry.
    pub fn new(cost: SimDuration, expiry: SimTime) -> Self {
        QueryState {
            status: TxnStatus::NotArrived,
            remaining: cost,
            expiry,
            restarts: 0,
            holds_locks: false,
        }
    }
}

impl UpdateState {
    /// Initial state for an update with the given cost.
    pub fn new(cost: SimDuration) -> Self {
        UpdateState {
            status: TxnStatus::NotArrived,
            remaining: cost,
            restarts: 0,
            holds_locks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_statuses() {
        assert!(TxnStatus::Committed.is_terminal());
        assert!(TxnStatus::Expired.is_terminal());
        assert!(TxnStatus::Invalidated.is_terminal());
        assert!(!TxnStatus::Queued.is_terminal());
        assert!(!TxnStatus::Running.is_terminal());
        assert!(!TxnStatus::Paused.is_terminal());
        assert!(!TxnStatus::NotArrived.is_terminal());
    }

    #[test]
    fn fresh_states() {
        let q = QueryState::new(SimDuration::from_ms(7), SimTime::from_ms(100));
        assert_eq!(q.status, TxnStatus::NotArrived);
        assert_eq!(q.remaining, SimDuration::from_ms(7));
        assert_eq!(q.restarts, 0);
        assert!(!q.holds_locks);
        let u = UpdateState::new(SimDuration::from_ms(3));
        assert_eq!(u.remaining, SimDuration::from_ms(3));
    }
}
