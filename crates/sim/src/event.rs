//! The simulator's event queue.
//!
//! Events are ordered by `(time, sequence)` — the sequence number breaks
//! simultaneous-event ties deterministically in insertion order, so a run
//! is a pure function of its inputs. Completion events carry a *run
//! token*: pausing or aborting the transaction bumps the CPU's token,
//! turning the stale completion into a no-op when it surfaces.

use crate::time::SimTime;
use crate::txn::{QueryId, UpdateId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Something scheduled to happen at a future instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The transaction on the CPU finishes, if the token still matches.
    Completion {
        /// Which transaction.
        txn: TxnEvent,
        /// CPU dispatch token at scheduling time.
        run_token: u64,
    },
    /// A scheduler timer (QUTS atom / adaptation boundary) fires.
    Timer,
}

/// The transaction a completion event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEvent {
    /// A query commit.
    Query(QueryId),
    /// An update application.
    Update(UpdateId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// The time of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(30), Event::Timer);
        q.push(SimTime::from_ms(10), Event::Timer);
        q.push(SimTime::from_ms(20), Event::Timer);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(5);
        q.push(
            t,
            Event::Completion {
                txn: TxnEvent::Query(QueryId(1)),
                run_token: 0,
            },
        );
        q.push(
            t,
            Event::Completion {
                txn: TxnEvent::Update(UpdateId(2)),
                run_token: 0,
            },
        );
        q.push(t, Event::Timer);
        let events: Vec<Event> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert!(matches!(
            events[0],
            Event::Completion {
                txn: TxnEvent::Query(QueryId(1)),
                ..
            }
        ));
        assert!(matches!(
            events[1],
            Event::Completion {
                txn: TxnEvent::Update(UpdateId(2)),
                ..
            }
        ));
        assert_eq!(events[2], Event::Timer);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ms(7), Event::Timer);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn always_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime(t), Event::Timer);
            }
            let mut last = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t.as_micros() >= last);
                last = t.as_micros();
            }
        }
    }
}
