//! Virtual time: microsecond-precision instants and durations.
//!
//! The paper's quantities span 1 ms (update costs) to 30 minutes (the
//! trace); integer microseconds cover that range exactly and keep event
//! ordering free of floating-point ties.

use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since the start of
/// the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// An instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration since an earlier instant (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// A duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// A duration from fractional milliseconds (rounded to the µs grid).
    pub fn from_ms_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "duration must be non-negative");
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ms(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_ms(10).as_ms_f64(), 10.0);
        assert_eq!(SimDuration::from_ms_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10) + SimDuration::from_ms(5);
        assert_eq!(t, SimTime::from_ms(15));
        assert_eq!(t - SimTime::from_ms(10), SimDuration::from_ms(5));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_ms(7);
        assert_eq!(u, SimTime::from_ms(7));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(
            SimTime::from_ms(5).since(SimTime::from_ms(10)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_ms(10).since(SimTime::from_ms(4)),
            SimDuration::from_ms(6)
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sub_panics_on_negative() {
        let _ = SimTime::from_ms(1) - SimTime::from_ms(2);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_ms(10).to_string(), "10.000ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![SimTime::from_ms(3), SimTime::ZERO, SimTime::from_ms(1)];
        times.sort();
        assert_eq!(
            times,
            vec![SimTime::ZERO, SimTime::from_ms(1), SimTime::from_ms(3)]
        );
    }
}
