//! The scheduler interface every policy implements.
//!
//! The simulator owns the clock, the CPU, the locks and the database; a
//! [`Scheduler`] owns only the *queues* and the policy for ordering them.
//! The engine calls:
//!
//! * [`Scheduler::admit_query`] / [`Scheduler::admit_update`] on arrival,
//! * [`Scheduler::drop_update`] when the register table invalidates a
//!   queued update,
//! * [`Scheduler::pop_next`] when the CPU is idle,
//! * [`Scheduler::requeue`] when a running transaction is paused and
//!   returns to the queue (keeping its locks and progress),
//! * [`Scheduler::should_preempt`] after every event, to ask whether the
//!   running transaction must yield,
//! * [`Scheduler::next_timer`] / [`Scheduler::on_timer`] for policies with
//!   time-driven state (QUTS atoms and adaptation periods).

use crate::time::{SimDuration, SimTime};
use crate::txn::{QueryId, UpdateId};
use quts_db::StockId;
use quts_metrics::SchedDecision;

/// Transaction class: the two sides of the scheduling trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Read-only user query (drives QoS, observes QoD).
    Query,
    /// Write-only blind update (drives QoD).
    Update,
}

impl Class {
    /// The opposite class.
    pub fn other(self) -> Class {
        match self {
            Class::Query => Class::Update,
            Class::Update => Class::Query,
        }
    }
}

/// A reference to a transaction of either class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnRef {
    /// A query by trace index.
    Query(QueryId),
    /// An update by trace index.
    Update(UpdateId),
}

impl TxnRef {
    /// The transaction's class.
    pub fn class(self) -> Class {
        match self {
            TxnRef::Query(_) => Class::Query,
            TxnRef::Update(_) => Class::Update,
        }
    }
}

/// Immutable facts about a query that priority policies may use,
/// precomputed by the engine from the spec and its Quality Contract.
#[derive(Debug, Clone, Copy)]
pub struct QueryInfo {
    /// Arrival time.
    pub arrival: SimTime,
    /// Arrival order among queries (FIFO tie-break).
    pub seq: u64,
    /// CPU service demand.
    pub cost: SimDuration,
    /// `qosmax` of the contract.
    pub qosmax: f64,
    /// `qodmax` of the contract.
    pub qodmax: f64,
    /// Relative deadline (`rtmax`) in milliseconds, if any.
    pub rtmax_ms: Option<f64>,
    /// Precomputed VRD priority `(qosmax + qodmax) / rtmax`.
    pub vrd: f64,
    /// Absolute expiry (arrival + lifetime).
    pub expiry: SimTime,
}

/// Immutable facts about an update that priority policies may use.
#[derive(Debug, Clone, Copy)]
pub struct UpdateInfo {
    /// Arrival time.
    pub arrival: SimTime,
    /// Arrival order among updates (FIFO key).
    pub seq: u64,
    /// CPU service demand.
    pub cost: SimDuration,
    /// The data item the update writes.
    pub stock: StockId,
}

/// A scheduling policy over a query queue and an update queue.
///
/// Implementations must be deterministic given their construction-time
/// seed; the engine never exposes nondeterministic state to them.
pub trait Scheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;

    /// A query arrived and enters the queue.
    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, now: SimTime);

    /// An update arrived and enters the queue.
    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, now: SimTime);

    /// A queued (or paused) update was invalidated by a newer arrival on
    /// the same item and must leave the queue.
    fn drop_update(&mut self, id: UpdateId);

    /// A transaction reached a terminal state — committed, applied,
    /// expired or aborted — and will never be re-queued. Policies that
    /// memoise per-transaction state (priority keys, FIFO positions)
    /// evict it here; otherwise a long-running engine leaks one entry
    /// per transaction forever. Default: no-op.
    fn finish(&mut self, txn: TxnRef) {
        let _ = txn;
    }

    /// Removes and returns the transaction the CPU should run next, or
    /// `None` when both queues are empty.
    fn pop_next(&mut self, now: SimTime) -> Option<TxnRef>;

    /// A transaction that was running returns to the queue (paused with
    /// partial progress, still holding locks). It must be eligible to be
    /// popped again later under the policy's normal ordering.
    fn requeue(&mut self, txn: TxnRef, now: SimTime);

    /// Whether the running transaction must be paused in favour of some
    /// queued one. Called after every event; must be cheap.
    fn should_preempt(&mut self, now: SimTime, running: TxnRef) -> bool;

    /// The next instant at which the policy's internal state changes
    /// (QUTS atom/adaptation boundaries), if any.
    fn next_timer(&mut self, now: SimTime) -> Option<SimTime> {
        let _ = now;
        None
    }

    /// The timer returned by [`Scheduler::next_timer`] fired.
    fn on_timer(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Whether any transaction is queued.
    fn has_pending(&self) -> bool;

    /// The recorded history of the query-CPU-share ρ, for policies that
    /// adapt it (Figure 9d). Other policies return `None`.
    fn rho_history(&self) -> Option<&[(SimTime, f64)]> {
        None
    }

    /// Enables or disables decision tracing. While enabled, the policy
    /// buffers its internal decisions (atom draws, ρ adaptations) as
    /// [`SchedDecision`]s for the engine to collect via
    /// [`Scheduler::drain_decisions`]. Default: no-op — policies without
    /// internal decision state have nothing to record, and the disabled
    /// path stays free.
    fn set_decision_trace(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Moves any buffered decisions into `sink` (in decision order).
    /// Called by the engine after every scheduling round while tracing;
    /// policies that never buffer leave `sink` untouched.
    fn drain_decisions(&mut self, sink: &mut Vec<SchedDecision>) {
        let _ = sink;
    }

    /// Current `(queries, updates)` queue depths, for trace events and
    /// metrics gauges. Policies that cannot split by class may report
    /// `(0, 0)` (the default).
    fn queue_depths(&self) -> (usize, usize) {
        (0, 0)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, now: SimTime) {
        (**self).admit_query(id, info, now)
    }
    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, now: SimTime) {
        (**self).admit_update(id, info, now)
    }
    fn drop_update(&mut self, id: UpdateId) {
        (**self).drop_update(id)
    }
    fn finish(&mut self, txn: TxnRef) {
        (**self).finish(txn)
    }
    fn pop_next(&mut self, now: SimTime) -> Option<TxnRef> {
        (**self).pop_next(now)
    }
    fn requeue(&mut self, txn: TxnRef, now: SimTime) {
        (**self).requeue(txn, now)
    }
    fn should_preempt(&mut self, now: SimTime, running: TxnRef) -> bool {
        (**self).should_preempt(now, running)
    }
    fn next_timer(&mut self, now: SimTime) -> Option<SimTime> {
        (**self).next_timer(now)
    }
    fn on_timer(&mut self, now: SimTime) {
        (**self).on_timer(now)
    }
    fn has_pending(&self) -> bool {
        (**self).has_pending()
    }
    fn rho_history(&self) -> Option<&[(SimTime, f64)]> {
        (**self).rho_history()
    }
    fn set_decision_trace(&mut self, enabled: bool) {
        (**self).set_decision_trace(enabled)
    }
    fn drain_decisions(&mut self, sink: &mut Vec<SchedDecision>) {
        (**self).drain_decisions(sink)
    }
    fn queue_depths(&self) -> (usize, usize) {
        (**self).queue_depths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_other() {
        assert_eq!(Class::Query.other(), Class::Update);
        assert_eq!(Class::Update.other(), Class::Query);
    }

    #[test]
    fn txn_ref_class() {
        assert_eq!(TxnRef::Query(QueryId(0)).class(), Class::Query);
        assert_eq!(TxnRef::Update(UpdateId(0)).class(), Class::Update);
    }
}
