//! # Discrete-event simulator for query/update scheduling
//!
//! A deterministic, virtual-time reproduction of the evaluation
//! methodology of the QUTS paper: a single-CPU main-memory web-database
//! that receives read-only queries (with Quality Contracts) and blind
//! write-only updates, executes them under a pluggable [`Scheduler`], and
//! accounts profit, response times and staleness.
//!
//! * [`time`] — microsecond-precision virtual clock types,
//! * [`event`] — the versioned event queue,
//! * [`txn`] — query/update specifications and runtime state,
//! * [`scheduler`] — the [`Scheduler`] trait every policy implements,
//! * [`engine`] — the simulation main loop (arrivals, 2PL-HP dispatch,
//!   preemption, invalidation, lifetime expiry, commits),
//! * [`report`] — per-run results.
//!
//! The simulator is *exactly deterministic*: events are ordered by
//! `(time, sequence)`, schedulers receive their own seeded RNGs, and no
//! hash-iteration order leaks into decisions. Running the same trace with
//! the same scheduler twice yields identical reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod report;
pub mod scheduler;
pub mod time;
pub mod txn;

pub use engine::{SimConfig, Simulator, StalenessMetric, UpdateReentry};
pub use report::{QueryOutcome, RunReport};
pub use scheduler::{Class, QueryInfo, Scheduler, TxnRef, UpdateInfo};
pub use time::{SimDuration, SimTime};
pub use txn::{QueryId, QuerySpec, UpdateId, UpdateSpec};

// Observability types shared with the policies and the live engine, so
// scheduler crates need no direct `quts-metrics` dependency.
pub use quts_metrics::{
    LifecycleSpans, SchedDecision, TraceClass, TraceConfig, TraceEvent, TraceLevel, TraceRecord,
};
