//! The simulation main loop.
//!
//! A single-CPU main-memory web-database: arrivals come from two
//! time-sorted traces, the pluggable [`Scheduler`] decides who runs, and
//! the engine enforces the system model of Section 2 of the paper —
//! 2PL-HP locking, update invalidation through the register table,
//! lifetime expiry for queries, and profit accounting under Quality
//! Contracts.
//!
//! ## Execution semantics
//!
//! * **Pause** (scheduler preemption): the running transaction keeps its
//!   progress *and its locks*, and returns to its queue.
//! * **Restart** (2PL-HP eviction): a conflicting dispatch takes the
//!   paused holder's lock; the victim loses all locks and all progress.
//! * **Invalidation**: a newly arrived update removes any queued, paused
//!   or running update on the same item — only the freshest value is ever
//!   applied.
//! * **Expiry**: a query dispatched after its lifetime deadline is
//!   aborted with zero profit; a query committing past the deadline earns
//!   nothing either.

use crate::event::{Event, EventQueue, TxnEvent};
use crate::report::{QueryOutcome, RunReport};
use crate::scheduler::{Class, QueryInfo, Scheduler, TxnRef, UpdateInfo};
use crate::time::{SimDuration, SimTime};
use crate::txn::{QueryId, QuerySpec, QueryState, TxnStatus, UpdateId, UpdateSpec, UpdateState};
use quts_db::{
    Acquisition, LockMode, LockTable, StalenessTracker, StockId, Store, TxnToken, UpdateRegister,
};
use quts_metrics::{
    LifecycleSpans, LogHistogram, OnlineStats, ProfitSeries, SchedDecision, TraceClass,
    TraceConfig, TraceEvent, TraceRing,
};
use quts_qc::{QcAggregates, StalenessAggregation};

/// Which of the paper's three staleness metrics (Section 2.1) feeds the
/// QoD profit functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StalenessMetric {
    /// Number of unapplied updates, `#uu` — the paper's default for
    /// systems that push every update as the master copy changes.
    #[default]
    UnappliedUpdates,
    /// Time differential `td`: milliseconds since the served value
    /// stopped being the freshest. Contracts must express `uumax`-style
    /// cutoffs in milliseconds.
    TimeDifferentialMs,
    /// Value distance `vd`: absolute difference between the served price
    /// and the freshest arrived price. Cutoffs are in price units.
    ValueDistance,
}

/// Where a replacement update enters the queue when it invalidates a
/// pending update on the same item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateReentry {
    /// The replacement inherits the invalidated update's queue position —
    /// the register-table entry persists, only its update identifier is
    /// swapped (Section 2.1 of the paper). Without this, frequently
    /// traded stocks are perpetually reborn at the queue tail and starve
    /// whenever the update queue is non-empty.
    #[default]
    InheritPosition,
    /// The replacement queues at the tail like a fresh arrival (ablation
    /// mode; demonstrates the hot-item starvation pathology).
    Tail,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of data items; all updates/queries must reference ids below
    /// this.
    pub num_stocks: u32,
    /// Which staleness metric feeds the QoD profit functions.
    pub staleness_metric: StalenessMetric,
    /// How per-item staleness combines for multi-item queries.
    pub staleness_agg: StalenessAggregation,
    /// Bin width of the profit time series (default 1 s).
    pub profit_bin: SimDuration,
    /// Collect a [`QueryOutcome`] per query (costs memory on big traces).
    pub collect_outcomes: bool,
    /// Actually execute query operators against the store (validates the
    /// data path; negligible cost next to the virtual service demand).
    pub execute_ops: bool,
    /// Queue-position semantics for updates that replace an invalidated
    /// one.
    pub update_reentry: UpdateReentry,
    /// CPU cost charged at every dispatch (context switch, cache warmup).
    /// Progress made during the switch window is lost if the transaction
    /// is preempted before the window ends. Default 50 µs — this is what
    /// makes very small atom times expensive (Figure 10b).
    pub switch_cost: SimDuration,
    /// Observability level: off (default), lifecycle spans, or spans
    /// plus the full decision ring. Event times use the virtual clock.
    pub trace: TraceConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_stocks: 0,
            staleness_metric: StalenessMetric::default(),
            staleness_agg: StalenessAggregation::Max,
            profit_bin: SimDuration::from_secs(1),
            collect_outcomes: false,
            execute_ops: true,
            update_reentry: UpdateReentry::InheritPosition,
            switch_cost: SimDuration(50),
            trace: TraceConfig::default(),
        }
    }
}

impl SimConfig {
    /// A configuration for `num_stocks` items with defaults otherwise.
    pub fn with_stocks(num_stocks: u32) -> Self {
        SimConfig {
            num_stocks,
            ..SimConfig::default()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    txn: TxnRef,
    started: SimTime,
    remaining_at_start: SimDuration,
    /// Dispatch overhead charged before useful work begins.
    overhead: SimDuration,
}

/// The discrete-event simulator; generic over the scheduling policy.
///
/// ```
/// use quts_db::{QueryOp, StockId};
/// use quts_qc::QualityContract;
/// use quts_sim::{QuerySpec, SimConfig, SimDuration, SimTime, Simulator};
/// use quts_sched::GlobalFifo;
///
/// let queries = vec![QuerySpec {
///     arrival: SimTime::ZERO,
///     op: QueryOp::Lookup(StockId(0)),
///     cost: SimDuration::from_ms(5),
///     qc: QualityContract::step(10.0, 50.0, 10.0, 1),
/// }];
/// let report = Simulator::new(
///     SimConfig::with_stocks(1),
///     queries,
///     vec![], // no updates
///     GlobalFifo::new(),
/// )
/// .run();
/// assert_eq!(report.committed, 1);
/// assert_eq!(report.total_pct(), 1.0); // fast and fresh: full profit
/// ```
pub struct Simulator<S: Scheduler> {
    config: SimConfig,
    scheduler: S,
    store: Store,
    locks: LockTable,
    register: UpdateRegister,
    tracker: StalenessTracker,
    events: EventQueue,

    queries: Vec<QuerySpec>,
    query_infos: Vec<QueryInfo>,
    query_states: Vec<QueryState>,
    updates: Vec<UpdateSpec>,
    update_states: Vec<UpdateState>,

    clock: SimTime,
    running: Option<Running>,
    run_token: u64,
    dispatch_seq: u64,
    pending_timer: Option<SimTime>,
    /// Global arrival counter: queue-ordering sequence numbers for both
    /// classes, so FIFO policies see the merged arrival order.
    arrival_seq: u64,
    /// Queue-ordering seq per update (inherited on invalidation under
    /// [`UpdateReentry::InheritPosition`]).
    update_seqs: Vec<u64>,
    /// Freshest *arrived* price per stock (the master copy), for the
    /// value-distance staleness metric.
    master_price: Vec<f64>,
    /// Reusable item buffer for lock acquisition (dispatch hot path).
    scratch_items: Vec<StockId>,
    /// Reusable per-item staleness buffer (commit hot path).
    scratch_staleness: Vec<f64>,

    // Measurement.
    aggregates: QcAggregates,
    profit: ProfitSeries,
    response_time_ms: OnlineStats,
    rt_histogram_us: LogHistogram,
    staleness: OnlineStats,
    update_delay_ms: OnlineStats,
    committed: u64,
    expired: u64,
    updates_applied: u64,
    query_restarts: u64,
    update_restarts: u64,
    cpu_busy_query: SimDuration,
    cpu_busy_update: SimDuration,
    outcomes: Option<Vec<QueryOutcome>>,

    // Observability (all `None`/empty when the trace level is `Off`).
    ring: Option<TraceRing>,
    spans: Option<LifecycleSpans>,
    /// First dispatch time per query; allocated only when spans are on.
    first_dispatch: Vec<Option<SimTime>>,
    /// Reusable buffer for draining scheduler decisions into the ring.
    decision_buf: Vec<SchedDecision>,
}

fn trace_class(class: Class) -> TraceClass {
    match class {
        Class::Query => TraceClass::Query,
        Class::Update => TraceClass::Update,
    }
}

fn token_of(txn: TxnRef) -> TxnToken {
    match txn {
        TxnRef::Query(q) => TxnToken(q.0 as u64),
        TxnRef::Update(u) => TxnToken(1 << 63 | u.0 as u64),
    }
}

fn txn_of(token: TxnToken) -> TxnRef {
    if token.0 & (1 << 63) != 0 {
        TxnRef::Update(UpdateId((token.0 & !(1 << 63)) as u32))
    } else {
        TxnRef::Query(QueryId(token.0 as u32))
    }
}

impl<S: Scheduler> Simulator<S> {
    /// Builds a simulator over time-sorted query and update traces.
    ///
    /// # Panics
    /// Panics if a trace is not sorted by arrival time, or references a
    /// stock id at or above `config.num_stocks`.
    pub fn new(
        config: SimConfig,
        queries: Vec<QuerySpec>,
        updates: Vec<UpdateSpec>,
        scheduler: S,
    ) -> Self {
        assert!(
            queries.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "query trace must be sorted by arrival"
        );
        assert!(
            updates.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "update trace must be sorted by arrival"
        );
        for u in &updates {
            assert!(
                u.trade.stock.index() < config.num_stocks as usize,
                "update references stock {} outside the store",
                u.trade.stock
            );
        }
        for q in &queries {
            for &s in q.op.accessed_items().iter() {
                assert!(
                    s.index() < config.num_stocks as usize,
                    "query references stock {s} outside the store"
                );
            }
        }

        let query_infos: Vec<QueryInfo> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| QueryInfo {
                arrival: q.arrival,
                seq: i as u64,
                cost: q.cost,
                qosmax: q.qc.qosmax(),
                qodmax: q.qc.qodmax(),
                rtmax_ms: q.qc.rtmax_ms(),
                vrd: q.qc.vrd_priority(),
                expiry: q.arrival + SimDuration::from_ms_f64(q.qc.default_lifetime_ms()),
            })
            .collect();
        let query_states: Vec<QueryState> = query_infos
            .iter()
            .zip(&queries)
            .map(|(info, q)| QueryState::new(q.cost, info.expiry))
            .collect();
        let update_states: Vec<UpdateState> =
            updates.iter().map(|u| UpdateState::new(u.cost)).collect();

        let outcomes = config.collect_outcomes.then(Vec::new);
        let profit_bin = config.profit_bin.as_micros();
        let num_stocks = config.num_stocks;
        let update_seqs = vec![0u64; updates.len()];
        // The synthetic store opens every stock at 100.0.
        let master_price = vec![100.0; num_stocks as usize];
        let ring = config
            .trace
            .level
            .events()
            .then(|| TraceRing::new(config.trace.ring_capacity));
        let spans = config.trace.level.spans().then(LifecycleSpans::new);
        let first_dispatch = if spans.is_some() {
            vec![None; queries.len()]
        } else {
            Vec::new()
        };
        let mut scheduler = scheduler;
        scheduler.set_decision_trace(ring.is_some());
        Simulator {
            config,
            scheduler,
            store: Store::with_synthetic_stocks(num_stocks),
            locks: LockTable::new(),
            register: UpdateRegister::new(),
            tracker: StalenessTracker::new(num_stocks as usize),
            events: EventQueue::new(),
            queries,
            query_infos,
            query_states,
            updates,
            update_states,
            clock: SimTime::ZERO,
            running: None,
            run_token: 0,
            dispatch_seq: 0,
            pending_timer: None,
            arrival_seq: 0,
            update_seqs,
            master_price,
            scratch_items: Vec::new(),
            scratch_staleness: Vec::new(),
            aggregates: QcAggregates::new(),
            profit: ProfitSeries::new(profit_bin),
            response_time_ms: OnlineStats::new(),
            rt_histogram_us: LogHistogram::new(),
            staleness: OnlineStats::new(),
            update_delay_ms: OnlineStats::new(),
            committed: 0,
            expired: 0,
            updates_applied: 0,
            query_restarts: 0,
            update_restarts: 0,
            cpu_busy_query: SimDuration::ZERO,
            cpu_busy_update: SimDuration::ZERO,
            outcomes,
            ring,
            spans,
            first_dispatch,
            decision_buf: Vec::new(),
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> RunReport {
        let mut next_query = 0usize;
        let mut next_update = 0usize;

        loop {
            // The next thing to happen: an arrival or a scheduled event.
            // Updates win exact ties with queries (the feed is upstream of
            // users); events at time t run before arrivals at time t
            // because they were scheduled first.
            let qa = self.queries.get(next_query).map(|q| q.arrival);
            let ua = self.updates.get(next_update).map(|u| u.arrival);
            let ea = self.events.peek_time();

            let arrival = match (qa, ua) {
                (Some(q), Some(u)) => Some(if u <= q {
                    (u, Class::Update)
                } else {
                    (q, Class::Query)
                }),
                (Some(q), None) => Some((q, Class::Query)),
                (None, Some(u)) => Some((u, Class::Update)),
                (None, None) => None,
            };

            enum Next {
                Arrival(Class),
                Event,
                Done,
            }
            let next = match (arrival, ea) {
                (None, None) => Next::Done,
                (Some((at, class)), None) => {
                    self.advance(at);
                    Next::Arrival(class)
                }
                (None, Some(et)) => {
                    self.advance(et);
                    Next::Event
                }
                (Some((at, class)), Some(et)) => {
                    if et <= at {
                        self.advance(et);
                        Next::Event
                    } else {
                        self.advance(at);
                        Next::Arrival(class)
                    }
                }
            };

            match next {
                Next::Done => break,
                Next::Arrival(Class::Query) => {
                    let id = QueryId(next_query as u32);
                    next_query += 1;
                    self.on_query_arrival(id);
                }
                Next::Arrival(Class::Update) => {
                    let id = UpdateId(next_update as u32);
                    next_update += 1;
                    self.on_update_arrival(id);
                }
                Next::Event => {
                    let (_, event) = self.events.pop().expect("peeked event vanished");
                    self.on_event(event);
                }
            }

            self.reschedule();
            self.maybe_schedule_timer();
            self.drain_sched_decisions();
        }

        debug_assert!(self.running.is_none(), "run ended with a busy CPU");
        debug_assert!(!self.scheduler.has_pending(), "run ended with queued work");
        self.validate_store();
        self.drain_sched_decisions();
        let trace_dropped = self.ring.as_ref().map_or(0, TraceRing::dropped);
        let trace = self.ring.take().map(|mut r| r.drain_ordered());

        RunReport {
            scheduler: self.scheduler.name(),
            aggregates: self.aggregates,
            profit: self.profit,
            response_time_ms: self.response_time_ms,
            rt_histogram_us: self.rt_histogram_us,
            staleness: self.staleness,
            update_delay_ms: self.update_delay_ms,
            committed: self.committed,
            expired: self.expired,
            updates_applied: self.updates_applied,
            updates_invalidated: self.register.invalidated_count(),
            query_restarts: self.query_restarts,
            update_restarts: self.update_restarts,
            dispatches: self.dispatch_seq,
            cpu_busy: self.cpu_busy_query + self.cpu_busy_update,
            cpu_busy_query: self.cpu_busy_query,
            cpu_busy_update: self.cpu_busy_update,
            end_time: self.clock,
            rho_history: self
                .scheduler
                .rho_history()
                .map(<[_]>::to_vec)
                .unwrap_or_default(),
            outcomes: self.outcomes,
            spans: self.spans,
            trace,
            trace_dropped,
        }
    }

    /// Moves decisions buffered inside the scheduler into the ring.
    /// One branch when tracing is off.
    fn drain_sched_decisions(&mut self) {
        if let Some(ring) = &mut self.ring {
            self.scheduler.drain_decisions(&mut self.decision_buf);
            ring.extend_decisions(&self.decision_buf);
            self.decision_buf.clear();
        }
    }

    /// End-of-run oracle: every stock's stored price must equal the price
    /// of the last update *applied* to it — whatever ordering, preemption,
    /// invalidation and restarts happened along the way.
    fn validate_store(&self) {
        let mut expected: Vec<Option<f64>> = vec![None; self.config.num_stocks as usize];
        for (u, state) in self.updates.iter().zip(&self.update_states) {
            if state.status == TxnStatus::Committed {
                // Updates apply in arrival order per stock (FIFO with
                // position inheritance), so the last committed one in
                // trace order holds the final value.
                expected[u.trade.stock.index()] = Some(u.trade.price);
            }
        }
        for (i, exp) in expected.iter().enumerate() {
            if let Some(price) = exp {
                let actual = self.store.record(quts_db::StockId(i as u32)).price();
                assert!(
                    (actual - price).abs() < 1e-12,
                    "stock {i}: store holds {actual}, last applied update says {price}"
                );
            }
        }
    }

    fn advance(&mut self, to: SimTime) {
        debug_assert!(to >= self.clock, "clock must not go backwards");
        self.clock = to;
    }

    fn next_seq(&mut self) -> u64 {
        self.arrival_seq += 1;
        self.arrival_seq
    }

    fn on_query_arrival(&mut self, id: QueryId) {
        let now = self.clock;
        let seq = self.next_seq();
        self.query_infos[id.index()].seq = seq;
        let spec = &self.queries[id.index()];
        self.aggregates.submit(&spec.qc);
        self.profit
            .submit(now.as_micros(), spec.qc.qosmax(), spec.qc.qodmax());
        self.query_states[id.index()].status = TxnStatus::Queued;
        let info = self.query_infos[id.index()];
        self.scheduler.admit_query(id, &info, now);
    }

    fn on_update_arrival(&mut self, id: UpdateId) {
        let now = self.clock;
        let stock = self.updates[id.index()].trade.stock;
        self.master_price[stock.index()] = self.updates[id.index()].trade.price;
        self.tracker.on_arrival(stock, now.as_micros());

        // The register invalidates any pending update on the same item.
        let mut inherited_seq = None;
        if let Some(old_raw) = self.register.register(stock, id.0 as u64) {
            let old = UpdateId(old_raw as u32);
            inherited_seq = Some(self.update_seqs[old.index()]);
            let old_state = &mut self.update_states[old.index()];
            match old_state.status {
                TxnStatus::Queued => {
                    self.scheduler.drop_update(old);
                }
                TxnStatus::Paused => {
                    self.locks.release_all(token_of(TxnRef::Update(old)));
                    old_state.holds_locks = false;
                    self.scheduler.drop_update(old);
                }
                TxnStatus::Running => {
                    // Abort mid-application: the work done is wasted.
                    self.locks.release_all(token_of(TxnRef::Update(old)));
                    old_state.holds_locks = false;
                    self.stop_cpu_charging();
                }
                other => unreachable!("pending update in state {other:?}"),
            }
            self.update_states[old.index()].status = TxnStatus::Invalidated;
            // Evict the invalidated update's scheduler memo; `drop_update`
            // only detaches the queue entry.
            self.scheduler.finish(TxnRef::Update(old));
            if let Some(ring) = &mut self.ring {
                ring.push(
                    now.as_micros(),
                    TraceEvent::UpdateInvalidate { id: old.0 as u64 },
                );
            }
        }

        // Under InheritPosition the register-table entry keeps its queue
        // position; only the update identifier was swapped.
        let seq = match (inherited_seq, self.config.update_reentry) {
            (Some(s), UpdateReentry::InheritPosition) => s,
            _ => self.next_seq(),
        };
        self.update_seqs[id.index()] = seq;

        self.update_states[id.index()].status = TxnStatus::Queued;
        let spec = &self.updates[id.index()];
        let info = UpdateInfo {
            arrival: spec.arrival,
            seq,
            cost: spec.cost,
            stock,
        };
        self.scheduler.admit_update(id, &info, now);
    }

    fn on_event(&mut self, event: Event) {
        match event {
            Event::Timer => {
                self.pending_timer = None;
                self.scheduler.on_timer(self.clock);
            }
            Event::Completion { txn, run_token } => {
                if run_token != self.run_token {
                    return; // stale: the transaction was paused or aborted
                }
                let running = self.running.expect("valid completion with idle CPU");
                debug_assert_eq!(
                    matches!(running.txn, TxnRef::Query(_)),
                    matches!(txn, TxnEvent::Query(_))
                );
                self.stop_cpu_charging();
                match txn {
                    TxnEvent::Query(q) => self.commit_query(q),
                    TxnEvent::Update(u) => self.apply_update(u),
                }
            }
        }
    }

    /// Takes the running transaction off the CPU, charging its busy time.
    fn stop_cpu_charging(&mut self) {
        let run = self.running.take().expect("CPU already idle");
        self.run_token += 1;
        let elapsed = self.clock - run.started;
        match run.txn.class() {
            Class::Query => self.cpu_busy_query += elapsed,
            Class::Update => self.cpu_busy_update += elapsed,
        }
    }

    fn commit_query(&mut self, id: QueryId) {
        let now = self.clock;
        let spec = &self.queries[id.index()];
        if self.config.execute_ops {
            let _ = spec.op.execute(&self.store);
        }
        let items = spec.op.accessed_items();
        match self.config.staleness_metric {
            StalenessMetric::UnappliedUpdates => self
                .tracker
                .unapplied_over_into(&items, &mut self.scratch_staleness),
            StalenessMetric::TimeDifferentialMs => {
                self.scratch_staleness.clear();
                self.scratch_staleness.extend(
                    items.iter().map(|&s| {
                        self.tracker.time_differential(s, now.as_micros()) as f64 / 1000.0
                    }),
                );
            }
            StalenessMetric::ValueDistance => {
                self.scratch_staleness.clear();
                self.scratch_staleness.extend(
                    items.iter().map(|&s| {
                        (self.master_price[s.index()] - self.store.record(s).price()).abs()
                    }),
                );
            }
        };
        let staleness = self.config.staleness_agg.aggregate(&self.scratch_staleness);
        let rt_ms = (now - spec.arrival).as_ms_f64();

        let late = rt_ms >= spec.qc.default_lifetime_ms();
        let (qos, qod) = spec.qc.profit_split(rt_ms, staleness);

        self.locks.release_all(token_of(TxnRef::Query(id)));
        let arrival = spec.arrival;
        let state = &mut self.query_states[id.index()];
        state.holds_locks = false;
        if late {
            state.status = TxnStatus::Expired;
            self.expired += 1;
            if let Some(spans) = &mut self.spans {
                spans.record_expiry(true);
            }
            if let Some(ring) = &mut self.ring {
                ring.push(
                    now.as_micros(),
                    TraceEvent::Expire {
                        id: id.0 as u64,
                        dispatched: true,
                    },
                );
            }
        } else {
            state.status = TxnStatus::Committed;
            self.committed += 1;
            self.aggregates.gain(qos, qod);
            self.profit.gain(now.as_micros(), qos, qod);
            self.response_time_ms.push(rt_ms);
            self.rt_histogram_us.record((now - arrival).as_micros());
            self.staleness.push(staleness);
            // Spans round staleness to the nearest integer of whatever
            // metric is configured (`#uu` is already integral).
            let staleness_int = staleness.round() as u64;
            if let Some(spans) = &mut self.spans {
                let first = self.first_dispatch[id.index()].unwrap_or(arrival);
                spans.record_commit(
                    arrival.as_micros(),
                    first.as_micros(),
                    now.as_micros(),
                    staleness_int,
                );
            }
            if let Some(ring) = &mut self.ring {
                ring.push(
                    now.as_micros(),
                    TraceEvent::Commit {
                        id: id.0 as u64,
                        response_us: (now - arrival).as_micros(),
                        staleness: staleness_int,
                    },
                );
            }
        }
        if let Some(outcomes) = &mut self.outcomes {
            outcomes.push(QueryOutcome {
                id,
                rt_ms,
                staleness,
                qos,
                qod,
                expired: late,
                finished_at: now,
            });
        }
        self.scheduler.finish(TxnRef::Query(id));
    }

    fn apply_update(&mut self, id: UpdateId) {
        let spec = &self.updates[id.index()];
        self.store.apply_update(&spec.trade);
        let delay_us = self
            .tracker
            .time_differential(spec.trade.stock, self.clock.as_micros());
        self.update_delay_ms.push(delay_us as f64 / 1000.0);
        self.tracker.on_apply(spec.trade.stock);
        let cleared = self.register.complete(spec.trade.stock, id.0 as u64);
        debug_assert!(cleared, "applied update was not the registered one");
        self.locks.release_all(token_of(TxnRef::Update(id)));
        let state = &mut self.update_states[id.index()];
        state.holds_locks = false;
        state.status = TxnStatus::Committed;
        self.updates_applied += 1;
        self.scheduler.finish(TxnRef::Update(id));
        if let Some(spans) = &mut self.spans {
            spans.record_update_apply(delay_us);
        }
        if let Some(ring) = &mut self.ring {
            ring.push(
                self.clock.as_micros(),
                TraceEvent::UpdateApply {
                    id: id.0 as u64,
                    delay_us,
                },
            );
        }
    }

    /// Runs the scheduling decision loop until the CPU has a stable
    /// occupant (or there is nothing to run).
    fn reschedule(&mut self) {
        loop {
            if let Some(run) = self.running {
                if self.scheduler.should_preempt(self.clock, run.txn) {
                    self.pause_running();
                    continue;
                }
                break;
            }
            let Some(txn) = self.scheduler.pop_next(self.clock) else {
                break;
            };
            if self.try_start(txn) {
                break;
            }
        }
    }

    fn pause_running(&mut self) {
        let run = self.running.expect("pausing an idle CPU");
        let elapsed = self.clock - run.started;
        self.stop_cpu_charging();
        // Work done during the switch window is overhead, not progress.
        let progress = elapsed.saturating_sub(run.overhead);
        let remaining = run.remaining_at_start.saturating_sub(progress);
        match run.txn {
            TxnRef::Query(q) => {
                let state = &mut self.query_states[q.index()];
                state.remaining = remaining;
                state.status = TxnStatus::Paused;
            }
            TxnRef::Update(u) => {
                let state = &mut self.update_states[u.index()];
                state.remaining = remaining;
                state.status = TxnStatus::Paused;
            }
        }
        self.scheduler.requeue(run.txn, self.clock);
    }

    /// Attempts to put `txn` on the CPU. Returns `false` when the
    /// transaction was discarded instead (expired query, invalidated
    /// update) and the caller should pop again.
    fn try_start(&mut self, txn: TxnRef) -> bool {
        let now = self.clock;
        let (remaining, mode) = match txn {
            TxnRef::Query(q) => {
                let state = &self.query_states[q.index()];
                debug_assert!(
                    matches!(state.status, TxnStatus::Queued | TxnStatus::Paused),
                    "popped query in state {:?}",
                    state.status
                );
                if now >= state.expiry {
                    // Lifetime exceeded: abort with zero profit.
                    if state.holds_locks {
                        self.locks.release_all(token_of(txn));
                    }
                    let state = &mut self.query_states[q.index()];
                    state.holds_locks = false;
                    state.status = TxnStatus::Expired;
                    self.expired += 1;
                    if let Some(outcomes) = &mut self.outcomes {
                        let spec = &self.queries[q.index()];
                        outcomes.push(QueryOutcome {
                            id: q,
                            rt_ms: (now - spec.arrival).as_ms_f64(),
                            staleness: 0.0,
                            qos: 0.0,
                            qod: 0.0,
                            expired: true,
                            finished_at: now,
                        });
                    }
                    let dispatched = self
                        .first_dispatch
                        .get(q.index())
                        .is_some_and(Option::is_some);
                    if let Some(spans) = &mut self.spans {
                        spans.record_expiry(dispatched);
                    }
                    if let Some(ring) = &mut self.ring {
                        ring.push(
                            now.as_micros(),
                            TraceEvent::Expire {
                                id: q.0 as u64,
                                dispatched,
                            },
                        );
                    }
                    self.scheduler.finish(txn);
                    return false;
                }
                (state.remaining, LockMode::Read)
            }
            TxnRef::Update(u) => {
                let state = &self.update_states[u.index()];
                if state.status == TxnStatus::Invalidated {
                    // Lazy tombstone from a scheduler that could not remove
                    // the entry eagerly.
                    self.scheduler.finish(txn);
                    return false;
                }
                debug_assert!(
                    matches!(state.status, TxnStatus::Queued | TxnStatus::Paused),
                    "popped update in state {:?}",
                    state.status
                );
                (state.remaining, LockMode::Write)
            }
        };

        // The accessed set goes through the reusable scratch buffer: the
        // lock loop needs `&mut self` for restart handling, which rules
        // out holding a borrow of the spec's item slice across it.
        let mut items = std::mem::take(&mut self.scratch_items);
        items.clear();
        match txn {
            TxnRef::Query(q) => {
                items.extend_from_slice(&self.queries[q.index()].op.accessed_items());
            }
            TxnRef::Update(u) => items.push(self.updates[u.index()].trade.stock),
        }

        // 2PL-HP acquisition: the dispatched transaction is by definition
        // the system's current pick, so it carries the highest priority
        // seen so far and evicts any paused conflicting holder.
        self.dispatch_seq += 1;
        let priority = self.dispatch_seq as f64;
        let me = token_of(txn);
        for &item in &items {
            match self.locks.acquire(me, priority, item, mode) {
                Acquisition::Granted { restarted } => {
                    for victim in restarted {
                        self.handle_restart(txn_of(victim));
                    }
                }
                Acquisition::Blocked { holder } => {
                    unreachable!("monotonic dispatch priorities cannot block (holder {holder:?})")
                }
            }
        }
        self.scratch_items = items;

        match txn {
            TxnRef::Query(q) => {
                let state = &mut self.query_states[q.index()];
                state.holds_locks = true;
                state.status = TxnStatus::Running;
            }
            TxnRef::Update(u) => {
                let state = &mut self.update_states[u.index()];
                state.holds_locks = true;
                state.status = TxnStatus::Running;
            }
        }
        let overhead = self.config.switch_cost;
        self.running = Some(Running {
            txn,
            started: now,
            remaining_at_start: remaining,
            overhead,
        });
        if !self.first_dispatch.is_empty() {
            if let TxnRef::Query(q) = txn {
                let slot = &mut self.first_dispatch[q.index()];
                if slot.is_none() {
                    *slot = Some(now);
                }
            }
        }
        if let Some(ring) = &mut self.ring {
            let id = match txn {
                TxnRef::Query(q) => q.0 as u64,
                TxnRef::Update(u) => u.0 as u64,
            };
            ring.push(
                now.as_micros(),
                TraceEvent::Dispatch {
                    class: trace_class(txn.class()),
                    id,
                },
            );
        }
        let txn_event = match txn {
            TxnRef::Query(q) => TxnEvent::Query(q),
            TxnRef::Update(u) => TxnEvent::Update(u),
        };
        self.events.push(
            now + overhead + remaining,
            Event::Completion {
                txn: txn_event,
                run_token: self.run_token,
            },
        );
        true
    }

    /// A paused transaction lost its locks to a higher-priority dispatch:
    /// it restarts from scratch (2PL-HP). It stays in the scheduler queue;
    /// only its simulator-side state changes.
    fn handle_restart(&mut self, victim: TxnRef) {
        match victim {
            TxnRef::Query(q) => {
                let state = &mut self.query_states[q.index()];
                debug_assert_eq!(state.status, TxnStatus::Paused, "victim must be paused");
                state.remaining = self.queries[q.index()].cost;
                state.status = TxnStatus::Queued;
                state.holds_locks = false;
                state.restarts += 1;
                self.query_restarts += 1;
            }
            TxnRef::Update(u) => {
                let state = &mut self.update_states[u.index()];
                debug_assert_eq!(state.status, TxnStatus::Paused, "victim must be paused");
                state.remaining = self.updates[u.index()].cost;
                state.status = TxnStatus::Queued;
                state.holds_locks = false;
                state.restarts += 1;
                self.update_restarts += 1;
            }
        }
    }

    fn maybe_schedule_timer(&mut self) {
        // Timers only matter while there is (or can be) work to reorder.
        if self.running.is_none() && !self.scheduler.has_pending() {
            return;
        }
        if let Some(t) = self.scheduler.next_timer(self.clock) {
            debug_assert!(t > self.clock, "timer must be in the future");
            if self.pending_timer.is_none_or(|p| t < p) {
                self.events.push(t, Event::Timer);
                self.pending_timer = Some(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quts_db::{QueryOp, StockId, Trade};
    use quts_qc::QualityContract;

    /// A minimal non-preemptive FIFO over both classes, used to test the
    /// engine mechanics in isolation from the real policies.
    struct TestFifo {
        queue: std::collections::VecDeque<TxnRef>,
        dropped: std::collections::HashSet<UpdateId>,
    }

    impl TestFifo {
        fn new() -> Self {
            TestFifo {
                queue: Default::default(),
                dropped: Default::default(),
            }
        }
    }

    impl Scheduler for TestFifo {
        fn name(&self) -> &'static str {
            "test-fifo"
        }
        fn admit_query(&mut self, id: QueryId, _info: &QueryInfo, _now: SimTime) {
            self.queue.push_back(TxnRef::Query(id));
        }
        fn admit_update(&mut self, id: UpdateId, _info: &UpdateInfo, _now: SimTime) {
            self.queue.push_back(TxnRef::Update(id));
        }
        fn drop_update(&mut self, id: UpdateId) {
            self.dropped.insert(id);
        }
        fn pop_next(&mut self, _now: SimTime) -> Option<TxnRef> {
            while let Some(txn) = self.queue.pop_front() {
                if let TxnRef::Update(u) = txn {
                    if self.dropped.remove(&u) {
                        continue;
                    }
                }
                return Some(txn);
            }
            None
        }
        fn requeue(&mut self, txn: TxnRef, _now: SimTime) {
            self.queue.push_front(txn);
        }
        fn should_preempt(&mut self, _now: SimTime, _running: TxnRef) -> bool {
            false
        }
        fn has_pending(&self) -> bool {
            !self.queue.is_empty()
        }
    }

    fn query(arrival_ms: u64, stock: u32, cost_ms: u64) -> QuerySpec {
        QuerySpec {
            arrival: SimTime::from_ms(arrival_ms),
            op: QueryOp::Lookup(StockId(stock)),
            cost: SimDuration::from_ms(cost_ms),
            qc: QualityContract::step(10.0, 50.0, 10.0, 1),
        }
    }

    fn update(arrival_ms: u64, stock: u32, cost_ms: u64) -> UpdateSpec {
        UpdateSpec {
            arrival: SimTime::from_ms(arrival_ms),
            trade: Trade {
                stock: StockId(stock),
                price: 42.0,
                volume: 1,
                trade_time_ms: arrival_ms,
            },
            cost: SimDuration::from_ms(cost_ms),
        }
    }

    fn run_fifo(queries: Vec<QuerySpec>, updates: Vec<UpdateSpec>) -> RunReport {
        let cfg = SimConfig {
            collect_outcomes: true,
            // Zero switch cost keeps the expected arithmetic exact.
            switch_cost: SimDuration::ZERO,
            ..SimConfig::with_stocks(8)
        };
        Simulator::new(cfg, queries, updates, TestFifo::new()).run()
    }

    /// Updates always preempt queries — exercises pause, 2PL-HP eviction
    /// and the restart path deterministically.
    struct TestUpdateHigh(TestFifo);

    impl TestUpdateHigh {
        fn new() -> Self {
            TestUpdateHigh(TestFifo::new())
        }
        fn updates_pending(&self) -> bool {
            self.0
                .queue
                .iter()
                .any(|t| matches!(t, TxnRef::Update(u) if !self.0.dropped.contains(u)))
        }
    }

    impl Scheduler for TestUpdateHigh {
        fn name(&self) -> &'static str {
            "test-uh"
        }
        fn admit_query(&mut self, id: QueryId, info: &QueryInfo, now: SimTime) {
            self.0.admit_query(id, info, now);
        }
        fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, now: SimTime) {
            self.0.admit_update(id, info, now);
        }
        fn drop_update(&mut self, id: UpdateId) {
            self.0.drop_update(id);
        }
        fn pop_next(&mut self, now: SimTime) -> Option<TxnRef> {
            // Updates first, then FIFO.
            if let Some(pos) = self
                .0
                .queue
                .iter()
                .position(|t| matches!(t, TxnRef::Update(u) if !self.0.dropped.contains(u)))
            {
                return self.0.queue.remove(pos);
            }
            self.0.pop_next(now)
        }
        fn requeue(&mut self, txn: TxnRef, now: SimTime) {
            self.0.requeue(txn, now);
        }
        fn should_preempt(&mut self, _now: SimTime, running: TxnRef) -> bool {
            matches!(running, TxnRef::Query(_)) && self.updates_pending()
        }
        fn has_pending(&self) -> bool {
            self.0.has_pending()
        }
    }

    fn run_uh(queries: Vec<QuerySpec>, updates: Vec<UpdateSpec>) -> RunReport {
        let cfg = SimConfig {
            collect_outcomes: true,
            switch_cost: SimDuration::ZERO,
            ..SimConfig::with_stocks(8)
        };
        Simulator::new(cfg, queries, updates, TestUpdateHigh::new()).run()
    }

    #[test]
    fn conflicting_preemption_restarts_the_query() {
        // Query on stock 0 starts at t=0 (10 ms). An update on the SAME
        // stock arrives at t=2: preempt, evict the paused query's read
        // lock (2PL-HP restart), apply the update (2 ms), then rerun the
        // query from scratch: commit at 2 + 2 + 10 = 14 ms, fresh.
        let r = run_uh(vec![query(0, 0, 10)], vec![update(2, 0, 2)]);
        assert_eq!(r.query_restarts, 1);
        assert_eq!(r.update_restarts, 0);
        assert_eq!(r.committed, 1);
        assert!((r.avg_response_time_ms() - 14.0).abs() < 1e-9);
        assert_eq!(r.avg_staleness(), 0.0);
        // Wasted work is charged: 2 ms lost + 10 ms rerun + 2 ms update.
        assert_eq!(r.cpu_busy, SimDuration::from_ms(14));
        assert_eq!(r.end_time, SimTime::from_ms(14));
    }

    #[test]
    fn non_conflicting_preemption_keeps_progress() {
        // Same timing, but the update touches a different stock: the
        // paused query keeps its 2 ms of progress and resumes, committing
        // at 2 + 2 + 8 = 12 ms.
        let r = run_uh(vec![query(0, 0, 10)], vec![update(2, 1, 2)]);
        assert_eq!(r.query_restarts, 0);
        assert!((r.avg_response_time_ms() - 12.0).abs() < 1e-9);
        assert_eq!(r.cpu_busy, SimDuration::from_ms(12));
    }

    #[test]
    fn running_update_aborted_by_newer_arrival() {
        // An update is mid-application when a newer one on the same stock
        // arrives: the running one is aborted (work wasted), the newer
        // applies instead.
        let r = run_fifo(vec![], vec![update(0, 0, 5), update(2, 0, 5)]);
        assert_eq!(r.updates_applied, 1);
        assert_eq!(r.updates_invalidated, 1);
        // 2 ms wasted on the aborted one + 5 ms for the survivor.
        assert_eq!(r.cpu_busy, SimDuration::from_ms(7));
        assert_eq!(r.end_time, SimTime::from_ms(7));
    }

    #[test]
    fn paused_update_dropped_by_newer_arrival() {
        // A query preempts... no preemption in FIFO; instead use UH: an
        // update is paused mid-run by nothing here — simpler: a queued
        // update is replaced while an older query runs.
        let r = run_fifo(
            vec![query(0, 1, 10)],
            vec![update(1, 0, 3), update(2, 0, 3)],
        );
        assert_eq!(r.updates_applied, 1);
        assert_eq!(r.updates_invalidated, 1);
        // Query 10 ms + one update 3 ms.
        assert_eq!(r.cpu_busy, SimDuration::from_ms(13));
    }

    #[test]
    fn time_differential_metric() {
        // Update arrives at 1 ms and stays unapplied while a long query
        // holds the CPU; the query commits at 10 ms observing ~9 ms of td.
        let cfg = SimConfig {
            staleness_metric: StalenessMetric::TimeDifferentialMs,
            collect_outcomes: true,
            switch_cost: SimDuration::ZERO,
            ..SimConfig::with_stocks(8)
        };
        let mut q = query(0, 0, 10);
        // td cutoff in milliseconds: profit while fresher than 5 ms.
        q.qc = QualityContract::step(1.0, 1000.0, 1.0, 5);
        let r = Simulator::new(cfg, vec![q], vec![update(1, 0, 2)], TestFifo::new()).run();
        let out = &r.outcomes.unwrap()[0];
        assert!(
            (out.staleness - 9.0).abs() < 1e-9,
            "td was {}",
            out.staleness
        );
        assert_eq!(out.qod, 0.0, "9 ms of staleness exceeds the 5 ms cutoff");
        assert_eq!(out.qos, 1.0);
    }

    #[test]
    fn value_distance_metric() {
        let cfg = SimConfig {
            staleness_metric: StalenessMetric::ValueDistance,
            collect_outcomes: true,
            switch_cost: SimDuration::ZERO,
            ..SimConfig::with_stocks(8)
        };
        // The store opens at 100.0; an update to 142.0 arrives while the
        // query runs, so the served value is 42.0 away from the master.
        let mut q = query(0, 0, 10);
        q.qc = QualityContract::step(1.0, 1000.0, 1.0, 50); // vd cutoff 50
        let mut u = update(1, 0, 2);
        u.trade.price = 142.0;
        let r = Simulator::new(cfg, vec![q], vec![u], TestFifo::new()).run();
        let out = &r.outcomes.unwrap()[0];
        assert!(
            (out.staleness - 42.0).abs() < 1e-9,
            "vd was {}",
            out.staleness
        );
        assert_eq!(out.qod, 1.0, "42.0 distance is within the 50.0 cutoff");
    }

    #[test]
    fn fresh_data_is_fresh_under_every_metric() {
        for metric in [
            StalenessMetric::UnappliedUpdates,
            StalenessMetric::TimeDifferentialMs,
            StalenessMetric::ValueDistance,
        ] {
            let cfg = SimConfig {
                staleness_metric: metric,
                collect_outcomes: true,
                switch_cost: SimDuration::ZERO,
                ..SimConfig::with_stocks(8)
            };
            // Update fully applied before the query arrives.
            let r = Simulator::new(
                cfg,
                vec![query(10, 0, 5)],
                vec![update(0, 0, 2)],
                TestFifo::new(),
            )
            .run();
            assert_eq!(r.avg_staleness(), 0.0, "{metric:?}");
        }
    }

    #[test]
    fn switch_cost_is_charged_per_dispatch() {
        let cfg = SimConfig {
            switch_cost: SimDuration::from_ms(1),
            ..SimConfig::with_stocks(8)
        };
        let r = Simulator::new(
            cfg,
            vec![query(0, 0, 5), query(0, 1, 5)],
            vec![],
            TestFifo::new(),
        )
        .run();
        // Two dispatches, 1 ms overhead each: 5+1 and 5+1 of CPU.
        assert_eq!(r.cpu_busy, SimDuration::from_ms(12));
        assert_eq!(r.end_time, SimTime::from_ms(12));
        assert!((r.avg_response_time_ms() - (6.0 + 12.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let r = run_fifo(vec![], vec![]);
        assert_eq!(r.committed, 0);
        assert_eq!(r.end_time, SimTime::ZERO);
        assert_eq!(r.cpu_busy, SimDuration::ZERO);
    }

    #[test]
    fn single_query_commits_with_full_profit() {
        let r = run_fifo(vec![query(0, 0, 5)], vec![]);
        assert_eq!(r.committed, 1);
        assert_eq!(r.expired, 0);
        assert!((r.avg_response_time_ms() - 5.0).abs() < 1e-9);
        assert_eq!(r.avg_staleness(), 0.0);
        // Full QoS + QoD: 20 of 20.
        assert!((r.total_pct() - 1.0).abs() < 1e-12);
        assert_eq!(r.end_time, SimTime::from_ms(5));
        assert_eq!(r.cpu_busy_query, SimDuration::from_ms(5));
    }

    #[test]
    fn fifo_queues_back_to_back() {
        let r = run_fifo(vec![query(0, 0, 5), query(0, 1, 5)], vec![]);
        assert_eq!(r.committed, 2);
        // Second query waits for the first: rt 5 and 10.
        assert!((r.avg_response_time_ms() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn unapplied_update_makes_query_stale() {
        // Update arrives first but FIFO order is by arrival; update(0),
        // query(1): update runs first, so the query sees fresh data.
        let r = run_fifo(vec![query(1, 0, 5)], vec![update(0, 0, 2)]);
        assert_eq!(r.avg_staleness(), 0.0);
        assert_eq!(r.updates_applied, 1);

        // Query first, update arrives during its execution: staleness 1.
        let r = run_fifo(vec![query(0, 0, 5)], vec![update(1, 0, 2)]);
        assert_eq!(r.committed, 1);
        assert!((r.avg_staleness() - 1.0).abs() < 1e-12);
        // QoD profit lost (uumax = 1), QoS kept: 10 of 20.
        assert!((r.total_pct() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn newer_update_invalidates_queued_older() {
        // Two updates on the same stock arrive while a query runs; only
        // the newer is applied.
        let r = run_fifo(
            vec![query(0, 1, 10)],
            vec![update(1, 0, 2), update(2, 0, 2)],
        );
        assert_eq!(r.updates_applied, 1);
        assert_eq!(r.updates_invalidated, 1);
        // Total CPU: 10ms query + 2ms surviving update.
        assert_eq!(r.cpu_busy, SimDuration::from_ms(12));
    }

    #[test]
    fn query_expires_when_dispatched_too_late() {
        // A 2000ms-cost query blocks the CPU; the second query's explicit
        // 1000ms lifetime passes before it is dispatched.
        let mut q1 = query(0, 0, 2000);
        q1.qc = QualityContract::step(1.0, 10_000.0, 0.0, 1).with_lifetime_ms(100_000.0);
        let mut q2 = query(1, 1, 5);
        q2.qc = q2.qc.with_lifetime_ms(1000.0);
        let r = run_fifo(vec![q1, q2], vec![]);
        assert_eq!(r.committed, 1);
        assert_eq!(r.expired, 1);
        let outcomes = r.outcomes.unwrap();
        let late = outcomes.iter().find(|o| o.id == QueryId(1)).unwrap();
        assert!(late.expired);
        assert_eq!(late.qos + late.qod, 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let queries = vec![query(0, 0, 5), query(3, 1, 7), query(9, 0, 6)];
        let updates = vec![update(1, 0, 2), update(4, 1, 3), update(5, 0, 1)];
        let a = run_fifo(queries.clone(), updates.clone());
        let b = run_fifo(queries, updates);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aggregates, b.aggregates);
        assert_eq!(a.cpu_busy, b.cpu_busy);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let _ = run_fifo(vec![query(5, 0, 1), query(0, 0, 1)], vec![]);
    }

    #[test]
    #[should_panic(expected = "outside the store")]
    fn out_of_range_stock_rejected() {
        let _ = run_fifo(vec![query(0, 99, 1)], vec![]);
    }
}
