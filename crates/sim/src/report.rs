//! Results of one simulation run.

use crate::time::{SimDuration, SimTime};
use crate::txn::QueryId;
use quts_metrics::trace::records_to_jsonl;
use quts_metrics::{LifecycleSpans, LogHistogram, OnlineStats, ProfitSeries, TraceRecord};
use quts_qc::QcAggregates;

/// Per-query detail, collected when
/// [`SimConfig::collect_outcomes`](crate::engine::SimConfig) is set.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query.
    pub id: QueryId,
    /// Response time in milliseconds (time to expiry for expired queries).
    pub rt_ms: f64,
    /// Aggregated staleness (`#uu`) observed at commit; zero for expired.
    pub staleness: f64,
    /// QoS profit earned.
    pub qos: f64,
    /// QoD profit earned.
    pub qod: f64,
    /// Whether the query exceeded its lifetime and was aborted.
    pub expired: bool,
    /// Commit (or expiry) time.
    pub finished_at: SimTime,
}

/// Everything measured during one run of the simulator.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the scheduling policy.
    pub scheduler: &'static str,
    /// Profit ledger: submitted maxima and gained totals (Table 1 symbols).
    pub aggregates: QcAggregates,
    /// Profit binned over time (Figure 9 series).
    pub profit: ProfitSeries,
    /// Response-time statistics over committed queries, in milliseconds.
    pub response_time_ms: OnlineStats,
    /// Response-time histogram over committed queries, in microseconds.
    pub rt_histogram_us: LogHistogram,
    /// Staleness (`#uu` after aggregation) over committed queries.
    pub staleness: OnlineStats,
    /// How long applied updates had been pending (first unapplied arrival
    /// on the item → application), in milliseconds.
    pub update_delay_ms: OnlineStats,
    /// Queries that committed.
    pub committed: u64,
    /// Queries aborted at their lifetime deadline.
    pub expired: u64,
    /// Updates whose value reached the database.
    pub updates_applied: u64,
    /// Updates dropped unapplied (invalidated by a newer arrival).
    pub updates_invalidated: u64,
    /// 2PL-HP restarts suffered by queries.
    pub query_restarts: u64,
    /// 2PL-HP restarts suffered by updates.
    pub update_restarts: u64,
    /// CPU dispatches performed (work throughput proxy for benchmarks).
    pub dispatches: u64,
    /// Total CPU time consumed.
    pub cpu_busy: SimDuration,
    /// CPU time consumed by queries (including work lost to restarts).
    pub cpu_busy_query: SimDuration,
    /// CPU time consumed by updates (including work lost to restarts).
    pub cpu_busy_update: SimDuration,
    /// Simulation end time (last event processed).
    pub end_time: SimTime,
    /// ρ history for adaptive schedulers (empty otherwise).
    pub rho_history: Vec<(SimTime, f64)>,
    /// Per-query outcomes if collection was enabled.
    pub outcomes: Option<Vec<QueryOutcome>>,
    /// Lifecycle spans when the trace level was `Spans` or `Full`.
    pub spans: Option<LifecycleSpans>,
    /// Decision-trace records (oldest first) when the level was `Full`.
    pub trace: Option<Vec<TraceRecord>>,
    /// Decisions lost to ring overwrites (0 unless the ring filled up).
    pub trace_dropped: u64,
}

impl RunReport {
    /// Gained QoS profit over `Qmax` (dark bars of Figures 6–8).
    pub fn qos_pct(&self) -> f64 {
        self.aggregates.qos_pct()
    }

    /// Gained QoD profit over `Qmax` (light bars of Figures 6–8).
    pub fn qod_pct(&self) -> f64 {
        self.aggregates.qod_pct()
    }

    /// Total gained profit over `Qmax` (bar heights).
    pub fn total_pct(&self) -> f64 {
        self.aggregates.total_pct()
    }

    /// Mean response time over committed queries, in milliseconds.
    pub fn avg_response_time_ms(&self) -> f64 {
        self.response_time_ms.mean()
    }

    /// Mean staleness (`#uu`) over committed queries — the y-axis of the
    /// paper's Figure 1 (averaged over all queries).
    pub fn avg_staleness(&self) -> f64 {
        self.staleness.mean()
    }

    /// CPU utilisation over the run.
    pub fn cpu_utilisation(&self) -> f64 {
        if self.end_time.as_micros() == 0 {
            0.0
        } else {
            self.cpu_busy.as_micros() as f64 / self.end_time.as_micros() as f64
        }
    }

    /// The decision trace as JSON Lines (stable key order, so equal
    /// runs serialise to equal bytes), or `None` when tracing was off.
    pub fn trace_jsonl(&self) -> Option<String> {
        self.trace.as_ref().map(|t| records_to_jsonl(t.iter()))
    }

    /// One-line summary for logs and quick comparisons.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} profit {:>5.1}% (QoS {:>5.1}% QoD {:>5.1}%)  rt {:>9.1}ms  #uu {:>6.3}  \
             committed {} expired {} applied {} invalidated {}",
            self.scheduler,
            self.total_pct() * 100.0,
            self.qos_pct() * 100.0,
            self.qod_pct() * 100.0,
            self.avg_response_time_ms(),
            self.avg_staleness(),
            self.committed,
            self.expired,
            self.updates_applied,
            self.updates_invalidated,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> RunReport {
        RunReport {
            scheduler: "test",
            aggregates: QcAggregates::new(),
            profit: ProfitSeries::new(1_000_000),
            response_time_ms: OnlineStats::new(),
            rt_histogram_us: LogHistogram::new(),
            staleness: OnlineStats::new(),
            update_delay_ms: OnlineStats::new(),
            committed: 0,
            expired: 0,
            updates_applied: 0,
            updates_invalidated: 0,
            query_restarts: 0,
            update_restarts: 0,
            dispatches: 0,
            cpu_busy: SimDuration::ZERO,
            cpu_busy_query: SimDuration::ZERO,
            cpu_busy_update: SimDuration::ZERO,
            end_time: SimTime::ZERO,
            rho_history: Vec::new(),
            outcomes: None,
            spans: None,
            trace: None,
            trace_dropped: 0,
        }
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = empty_report();
        assert_eq!(r.total_pct(), 0.0);
        assert_eq!(r.avg_response_time_ms(), 0.0);
        assert_eq!(r.cpu_utilisation(), 0.0);
        assert!(r.summary().contains("test"));
    }

    #[test]
    fn utilisation() {
        let mut r = empty_report();
        r.cpu_busy = SimDuration::from_secs(30);
        r.end_time = SimTime::from_secs(60);
        assert!((r.cpu_utilisation() - 0.5).abs() < 1e-12);
    }
}
