//! Observability must be a pure read-out: the decision trace is a
//! deterministic function of (trace, policy), and recording it must not
//! perturb the simulation it records.

use quts_bench::{paper_trace, run_policy, run_policy_with, Policy};
use quts_sim::{RunReport, SimConfig, TraceConfig};

fn traced(scale: u32, seed: u64, policy: Policy) -> RunReport {
    let trace = paper_trace(scale, seed);
    let sim = SimConfig {
        trace: TraceConfig::full(),
        ..SimConfig::default()
    };
    run_policy_with(&trace, policy, sim)
}

/// The aggregates every experiment table is built from.
fn result_digest(r: &RunReport) -> String {
    format!(
        "committed={} expired={} dispatches={} applied={} invalidated={} \
         qos={:.12} qod={:.12} total={:.12} rt={:.9} end={} rho={:?}",
        r.committed,
        r.expired,
        r.dispatches,
        r.updates_applied,
        r.updates_invalidated,
        r.qos_pct(),
        r.qod_pct(),
        r.total_pct(),
        r.avg_response_time_ms(),
        r.end_time,
        r.rho_history,
    )
}

#[test]
fn same_seed_traces_are_byte_identical() {
    for policy in [Policy::Fifo, Policy::quts_default()] {
        let a = traced(600, 7, policy);
        let b = traced(600, 7, policy);
        let ja = a.trace_jsonl().expect("trace enabled");
        let jb = b.trace_jsonl().expect("trace enabled");
        assert!(!ja.is_empty(), "{policy:?} produced an empty trace");
        assert_eq!(ja, jb, "{policy:?} trace diverged across same-seed runs");
        assert_eq!(a.trace_dropped, b.trace_dropped);
    }
}

#[test]
fn tracing_does_not_change_results() {
    // The acceptance bar for the instrumentation: a fully-traced run and
    // an untraced run of the same workload produce the same tables.
    let trace = paper_trace(600, 7);
    for policy in Policy::comparison_set() {
        let off = run_policy(&trace, policy);
        let full = traced(600, 7, policy);
        assert_eq!(
            result_digest(&off),
            result_digest(&full),
            "{policy:?} results changed when tracing was enabled"
        );
        assert_eq!(off.summary(), full.summary());
        assert!(off.trace.is_none());
        assert!(full.trace.is_some());
    }
}

#[test]
fn span_level_populates_histograms_without_a_ring() {
    let trace = paper_trace(600, 7);
    let sim = SimConfig {
        trace: TraceConfig::spans(),
        ..SimConfig::default()
    };
    let r = run_policy_with(&trace, Policy::quts_default(), sim);
    let spans = r.spans.as_ref().expect("spans recorded");
    assert_eq!(spans.committed, r.committed);
    assert!(spans.queue_wait_us.count() > 0);
    assert!(r.trace.is_none(), "Spans level must not allocate a ring");
}
