//! Determinism guarantees the harness trades on: a simulation is a pure
//! function of (trace, policy), and the parallel job pool returns exactly
//! what a sequential run would — byte for byte.

use quts_bench::{experiments, paper_trace, run_policy, Policy};
use quts_sim::RunReport;

/// A comparison digest over every aggregate the experiments print.
fn digest(r: &RunReport) -> String {
    format!(
        "dispatches={} qos={:.12} qod={:.12} total={:.12} rt={:.9} uu={:.9} cpu={:.9} rho={:?}",
        r.dispatches,
        r.qos_pct(),
        r.qod_pct(),
        r.total_pct(),
        r.avg_response_time_ms(),
        r.avg_staleness(),
        r.cpu_utilisation(),
        r.rho_history,
    )
}

#[test]
fn same_seed_runs_are_identical() {
    let trace_a = paper_trace(600, 7);
    let trace_b = paper_trace(600, 7);
    for policy in Policy::comparison_set() {
        let a = run_policy(&trace_a, policy);
        let b = run_policy(&trace_b, policy);
        assert_eq!(digest(&a), digest(&b), "{policy:?} diverged across runs");
    }
}

#[test]
fn parallel_spectrum_output_matches_sequential() {
    // A scaled-down Figures 7-8 grid: 36 simulations, the largest fan-out
    // in the suite. The parallel pass must produce byte-identical output.
    let scale = 600;
    let mut sequential = Vec::new();
    experiments::fig7_fig8_spectrum::run(scale, 1, &mut sequential).expect("sequential run");
    let mut parallel = Vec::new();
    experiments::fig7_fig8_spectrum::run(scale, 4, &mut parallel).expect("parallel run");
    assert!(!sequential.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&sequential),
        String::from_utf8_lossy(&parallel),
        "jobs=4 output differs from jobs=1"
    );
}

#[test]
fn parallel_ablation_grid_matches_sequential() {
    // The most heterogeneous experiment: seven differently-shaped grids.
    let scale = 900;
    let mut sequential = Vec::new();
    experiments::ablations::run(scale, 1, &mut sequential).expect("sequential run");
    let mut parallel = Vec::new();
    experiments::ablations::run(scale, 3, &mut parallel).expect("parallel run");
    assert_eq!(
        String::from_utf8_lossy(&sequential),
        String::from_utf8_lossy(&parallel),
        "jobs=3 output differs from jobs=1"
    );
}
