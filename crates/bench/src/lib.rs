//! # Experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and
//! figure of the paper (see DESIGN.md for the experiment index), plus the
//! Criterion micro-benchmarks under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod parallel;
pub mod perf;
pub mod tracectx;

pub use harness::{paper_trace, run_policy, run_policy_with, Policy};
pub use parallel::{jobs, run_many};
