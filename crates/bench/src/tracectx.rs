//! Process-global decision-trace context for the experiment harness.
//!
//! `run_all --trace-dir DIR` arms this registry; from then on every
//! simulation run through [`crate::harness::run_policy_with`] executes
//! with [`TraceLevel::Full`](quts_sim::TraceLevel) and its decision log
//! is written to `DIR/<experiment>/NNN_<policy>.jsonl`, where `NNN` is
//! the run's ordinal within the experiment. File numbering follows
//! execution order, so tracing forces the sequential (`jobs = 1`) path —
//! the simulations themselves are deterministic either way.

use quts_sim::{RunReport, SimConfig, TraceConfig};
use std::path::PathBuf;
use std::sync::Mutex;

struct Ctx {
    dir: PathBuf,
    experiment: String,
    next_run: u32,
}

static CTX: Mutex<Option<Ctx>> = Mutex::new(None);

/// Arms decision tracing: subsequent harness runs write JSONL under
/// `dir`. Call [`set_experiment`] before each experiment to pick the
/// subdirectory.
pub fn enable(dir: PathBuf) {
    *CTX.lock().expect("trace context poisoned") = Some(Ctx {
        dir,
        experiment: "unnamed".into(),
        next_run: 0,
    });
}

/// Disarms tracing (subsequent runs are untraced again).
pub fn disable() {
    *CTX.lock().expect("trace context poisoned") = None;
}

/// Whether tracing is armed.
pub fn enabled() -> bool {
    CTX.lock().expect("trace context poisoned").is_some()
}

/// Names the experiment subdirectory for subsequent runs and restarts
/// the per-experiment run numbering.
pub fn set_experiment(name: &str) {
    if let Some(ctx) = CTX.lock().expect("trace context poisoned").as_mut() {
        ctx.experiment = sanitize(name);
        ctx.next_run = 0;
    }
}

/// Raises `sim` to full tracing when armed; returns whether it did.
pub fn apply(sim: &mut SimConfig) -> bool {
    if enabled() {
        sim.trace = TraceConfig::full();
        true
    } else {
        false
    }
}

/// Writes one finished run's decision log (no-op when disarmed or the
/// report carries no trace). Write failures are reported to stderr, not
/// fatal — a broken disk must not take the experiment down.
pub fn write(report: &RunReport) {
    let Some(jsonl) = report.trace_jsonl() else {
        return;
    };
    let mut guard = CTX.lock().expect("trace context poisoned");
    let Some(ctx) = guard.as_mut() else {
        return;
    };
    let run = ctx.next_run;
    ctx.next_run += 1;
    let dir = ctx.dir.join(&ctx.experiment);
    let path = dir.join(format!("{run:03}_{}.jsonl", sanitize(report.scheduler)));
    drop(guard); // don't hold the lock across filesystem calls
    let result = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, jsonl));
    if let Err(e) = result {
        eprintln!("trace-dir: could not write {}: {e}", path.display());
    }
}

/// Lowercases and maps non-alphanumerics to `_` so scheduler and
/// experiment names are safe as path components.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_flattens_separators() {
        assert_eq!(sanitize("FIFO-UH"), "fifo_uh");
        assert_eq!(sanitize("Greedy"), "greedy");
        assert_eq!(sanitize("fig7/8 spectrum"), "fig7_8_spectrum");
    }

    #[test]
    fn apply_is_inert_when_disarmed() {
        // Tests share the process-global context; only exercise the
        // disarmed path here (run_all exercises the armed one).
        if !enabled() {
            let mut sim = SimConfig::default();
            assert!(!apply(&mut sim));
            assert!(!sim.trace.level.events());
        }
    }
}
