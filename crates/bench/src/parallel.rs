//! A minimal scoped-thread job pool for fanning independent simulation
//! runs across cores.
//!
//! Every simulation in this crate is a pure function of `(trace, policy,
//! config, seed)`, so experiments that sweep a parameter grid are
//! embarrassingly parallel. [`run_many`] executes such a grid with a
//! fixed number of worker threads and returns the results **in input
//! order**, so the caller's rendering — and therefore the experiment's
//! output — is byte-identical whether one worker or sixteen ran the grid.
//!
//! The worker count comes from [`jobs`]: the `QUTS_JOBS` environment
//! variable when set, the machine's available parallelism otherwise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of parallel simulation jobs to use: `QUTS_JOBS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn jobs() -> usize {
    std::env::var("QUTS_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `f` over every input with up to `jobs` worker threads and returns
/// the outputs in input order.
///
/// Work is claimed through a shared atomic cursor, so long and short runs
/// interleave without static partitioning. With `jobs <= 1` (or a single
/// input) everything runs inline on the calling thread — the sequential
/// baseline the determinism tests compare against.
pub fn run_many<I, T, F>(jobs: usize, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if jobs <= 1 || n <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let input = slots[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("input claimed twice");
                let output = f(input);
                *results[i].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker died before storing its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_many(4, inputs.clone(), |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..37).collect();
        let seq = run_many(1, inputs.clone(), |x| x * x + 1);
        let par = run_many(8, inputs, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(run_many(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(run_many(4, vec![7u32], |x| x + 1), vec![8]);
    }
}
