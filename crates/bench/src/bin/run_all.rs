//! Runs every experiment in-process, in paper order — the one-shot
//! reproduction of the paper's whole evaluation section — and writes the
//! perf trajectory to `BENCH_quts.json`.
//!
//! Each experiment fans its independent simulations across `QUTS_JOBS`
//! worker threads (default: all cores); output is byte-identical to a
//! sequential run because grids return results in input order. The perf
//! file records, per experiment, the wall time and simulation throughput
//! of the timed pass, plus a silent sequential (one-worker) baseline pass
//! when more than one job was used.

use quts_bench::experiments::{self, ExperimentFn};
use quts_bench::perf::{self, per_sec, ExperimentPerf};
use quts_bench::{paper_trace, run_policy_with, tracectx, Policy};
use quts_db::{Store, Trade};
use quts_engine::{
    Cluster, ControllerConfig, DurabilityConfig, Engine, EngineConfig, FaultPlan, FsyncPolicy,
    GroupCommitConfig, LinkFaultPlan, Replica, ReplicaConfig, Router, RouterConfig, ShardConfig,
    ShardMap, ShardedEngine, ShipConfig, ShipListener, SubmitError,
};
use quts_metrics::LogHistogram;
use quts_sim::{SimConfig, TraceConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    let scale = quts_bench::harness::experiment_scale();
    let args: Vec<String> = std::env::args().collect();
    // Run only the sharding probe and report its scaling row — the quick
    // path CI uses to check the 4-shard speedup without the full suite.
    if args.iter().any(|a| a == "--shard-scaling-only") {
        let shard = measure_shard_scaling();
        let one = shard
            .cells
            .iter()
            .find(|c| c.shards == 1)
            .map(ShardScalingCell::updates_per_sec)
            .unwrap_or(0.0);
        for c in &shard.cells {
            println!(
                "shards={} submitters={} updates={} updates_per_sec={:.1} speedup={:.2}x \
                 ack_p50_us={} ack_p99_us={}",
                c.shards,
                c.submitters,
                c.updates,
                c.updates_per_sec(),
                if one > 0.0 { c.updates_per_sec() / one } else { 0.0 },
                c.ack_p50_us,
                c.ack_p99_us,
            );
        }
        for c in &shard.cross_cells {
            println!(
                "cross shards={} cross_percent={} queries={} cross_submitted={} \
                 cross_committed={} queries_per_sec={:.1}",
                c.shards,
                c.cross_percent,
                c.queries,
                c.cross_submitted,
                c.cross_committed,
                per_sec(c.queries, c.wall),
            );
        }
        return;
    }
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace-dir")
        .and_then(|i| args.get(i + 1).cloned());
    // Tracing numbers files in execution order, so it forces the
    // deterministic sequential path.
    let jobs = if trace_dir.is_some() {
        1
    } else {
        quts_bench::jobs()
    };
    if let Some(dir) = &trace_dir {
        tracectx::enable(dir.into());
        println!("decision traces -> {dir} (jobs forced to 1)");
    }

    let mut perfs: Vec<ExperimentPerf> = Vec::new();
    let mut failed = Vec::new();
    perf::drain(); // discard records from before the timed suite

    for (name, exp) in experiments::ALL {
        println!("################################################################");
        tracectx::set_experiment(name);
        let started = Instant::now();
        let outcome = run_caught(exp, scale, jobs, false);
        let wall = started.elapsed();
        let sims = perf::drain();
        match outcome {
            Ok(()) => perfs.push(ExperimentPerf::new(name, wall, &sims)),
            Err(msg) => {
                eprintln!("experiment {name} failed: {msg}");
                failed.push(name);
            }
        }
        println!();
    }

    // The overhead probes and (when parallel) baseline pass run untraced.
    tracectx::disable();
    let overhead = measure_trace_overhead(scale);
    let wal = measure_wal_overhead();
    let gc = measure_group_commit();
    let repl = measure_replication_lag();
    let fo = measure_failover_mttr();
    let shard = measure_shard_scaling();

    // Sequential baseline: a silent one-worker pass so the perf file
    // always records both numbers. When the timed pass already ran with
    // one job it *is* the baseline.
    let baseline: Vec<(&str, Duration)> = if jobs > 1 {
        experiments::ALL
            .iter()
            .filter(|(name, _)| !failed.contains(name))
            .map(|&(name, exp)| {
                let started = Instant::now();
                let outcome = run_caught(exp, scale, 1, true);
                perf::drain();
                if let Err(msg) = outcome {
                    eprintln!("baseline pass of {name} failed: {msg}");
                }
                (name, started.elapsed())
            })
            .collect()
    } else {
        perfs.iter().map(|p| (p.name, p.wall)).collect()
    };

    let json = render_json(
        scale, jobs, &perfs, &baseline, &overhead, &wal, &gc, &repl, &fo, &shard,
    );
    let path = std::env::var("QUTS_BENCH_OUT").unwrap_or_else(|_| "BENCH_quts.json".into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path} (jobs={jobs}, scale={scale})"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            failed.push("BENCH_quts.json");
        }
    }

    if !failed.is_empty() {
        eprintln!("failed experiments: {failed:?}");
        std::process::exit(1);
    }
    println!("all experiments completed");
}

/// Runs one experiment, catching panics so a bad experiment cannot take
/// the rest of the suite down (the old subprocess isolation, in-process).
fn run_caught(exp: ExperimentFn, scale: u32, jobs: usize, silent: bool) -> Result<(), String> {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if silent {
            exp(scale, jobs, &mut std::io::sink())
        } else {
            exp(scale, jobs, &mut std::io::stdout().lock())
        }
    }));
    match run {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("io error: {e}")),
        Err(panic) => Err(panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "panic".into())),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// One QUTS simulation timed with tracing off and again at `Full` — the
/// regression guard for the instrumented fast path (the off branch must
/// stay within a couple of percent of the untraced PR 2 numbers).
struct TraceOverhead {
    events: u64,
    off: Duration,
    full: Duration,
}

impl TraceOverhead {
    fn full_overhead_pct(&self) -> f64 {
        if self.off.as_secs_f64() > 0.0 {
            (self.full.as_secs_f64() / self.off.as_secs_f64() - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

fn measure_trace_overhead(scale: u32) -> TraceOverhead {
    let trace = paper_trace(scale, 1);
    let events = (trace.queries.len() + trace.updates.len()) as u64;
    // Warm-up run so allocator and cache state match between the passes.
    let _ = run_policy_with(&trace, Policy::quts_default(), SimConfig::default());
    let started = Instant::now();
    let _ = run_policy_with(&trace, Policy::quts_default(), SimConfig::default());
    let off = started.elapsed();
    let full_cfg = SimConfig {
        trace: TraceConfig::full(),
        ..SimConfig::default()
    };
    let started = Instant::now();
    let _ = run_policy_with(&trace, Policy::quts_default(), full_cfg);
    let full = started.elapsed();
    perf::drain(); // the probe is not part of the experiment trajectory
    TraceOverhead { events, off, full }
}

/// The durability cost probe: the same update stream pushed through a
/// live engine with the WAL off and at each fsync policy — **equal
/// update counts in every mode**, so updates_per_sec and the latency
/// percentiles compare like for like. `fsync=Off` must stay within
/// noise of the no-WAL engine; `Always` pays one `fsync` per update;
/// `fsync_always_group_8` keeps the per-group `Always` guarantee but
/// amortizes the fsync across a commit group fed by 8 submitters.
struct WalMode {
    mode: &'static str,
    updates: u64,
    submitters: u32,
    wall: Duration,
    /// Client-observed per-update latency (submission call, or
    /// submission → durable ack when `durable_acks`), microseconds.
    latency: LogHistogram,
}

impl WalMode {
    fn per_update(&self) -> Duration {
        if self.updates == 0 {
            Duration::ZERO
        } else {
            self.wall / self.updates as u32
        }
    }
}

struct WalOverhead {
    stocks: u32,
    modes: Vec<WalMode>,
}

fn probe_trade(stocks: u32, i: u64) -> Trade {
    Trade {
        stock: quts_db::StockId((i % stocks as u64) as u32),
        price: 100.0 + (i % 97) as f64 * 0.25,
        volume: 100 + i % 900,
        trade_time_ms: i,
    }
}

/// Pushes `n` round-robin trades through a fresh engine from
/// `submitters` concurrent threads and times until every one is applied
/// (shutdown drains the backlog). Per-update latency — the submission
/// call, or submission → durable-LSN ack when `durable_acks` — lands in
/// the returned histogram (µs). Returns the engine's final stats too,
/// so group-commit probes can read the fsync and batch counters.
fn drive_updates(
    config: EngineConfig,
    stocks: u32,
    n: u64,
    submitters: u32,
    durable_acks: bool,
) -> (Duration, LogHistogram, quts_engine::LiveStats) {
    let config_had_wal = config.durability.is_some();
    let engine = Engine::start(Store::with_synthetic_stocks(stocks), config);
    let handle = engine.handle();
    let started = Instant::now();
    let per_thread = n / submitters as u64;
    let workers: Vec<_> = (0..submitters)
        .map(|w| {
            let h = handle.clone();
            std::thread::spawn(move || {
                let mut hist = LogHistogram::default();
                let base = w as u64 * per_thread;
                for i in base..base + per_thread {
                    let trade = probe_trade(stocks, i);
                    let t0 = Instant::now();
                    if durable_acks {
                        let ticket = loop {
                            match h.submit_update_durable(trade) {
                                Ok(t) => break t,
                                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                                Err(e) => panic!("wal probe submission failed: {e:?}"),
                            }
                        };
                        ticket
                            .recv_timeout(Duration::from_secs(30))
                            .expect("durable ack");
                    } else {
                        loop {
                            match h.submit_update(trade) {
                                Ok(()) => break,
                                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                                Err(e) => panic!("wal probe submission failed: {e:?}"),
                            }
                        }
                    }
                    hist.record(t0.elapsed().as_micros() as u64);
                }
                hist
            })
        })
        .collect();
    let mut latency = LogHistogram::default();
    for w in workers {
        latency.merge(&w.join().expect("submitter thread"));
    }
    let stats = engine.shutdown();
    let wall = started.elapsed();
    let submitted = per_thread * submitters as u64;
    // The register table collapses same-stock bursts, so fewer trades
    // may *apply* than were submitted — but with a WAL every submission
    // must have been logged before it was admitted.
    assert!(stats.updates_applied > 0, "wal probe applied nothing");
    if config_had_wal {
        assert_eq!(
            stats.wal_appended, submitted,
            "every admitted update is logged"
        );
    }
    (wall, latency, stats)
}

fn wal_bench_config(mode: &str, fsync: FsyncPolicy) -> (PathBuf, EngineConfig) {
    let dir = std::env::temp_dir().join(format!("quts-wal-bench-{}-{mode}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // A huge snapshot cadence isolates the per-append WAL tax; the
    // final snapshot on shutdown is identical across modes.
    let cfg = EngineConfig::default().with_durability(
        DurabilityConfig::new(&dir)
            .with_fsync(fsync)
            .with_snapshot_every(u64::MAX),
    );
    (dir, cfg)
}

fn measure_wal_overhead() -> WalOverhead {
    const STOCKS: u32 = 512;
    const N: u64 = 20_000;

    // Warm-up pass so allocator/page-cache state matches across modes;
    // best-of-3 passes filter scheduler and frequency-scaling noise.
    let _ = drive_updates(EngineConfig::default(), STOCKS, N / 4, 1, false);
    let best = |mk: &dyn Fn() -> (Option<PathBuf>, EngineConfig), submitters: u32| {
        (0..3)
            .map(|_| {
                let (dir, cfg) = mk();
                let (wall, latency, _) = drive_updates(cfg, STOCKS, N, submitters, false);
                if let Some(dir) = dir {
                    let _ = std::fs::remove_dir_all(&dir);
                }
                (wall, latency)
            })
            .min_by_key(|&(wall, _)| wall)
            .expect("three passes ran")
    };

    let mut modes = Vec::new();
    let (wall, latency) = best(&|| (None, EngineConfig::default()), 1);
    modes.push(WalMode {
        mode: "no_wal",
        updates: N,
        submitters: 1,
        wall,
        latency,
    });
    for (mode, fsync) in [
        ("fsync_off", FsyncPolicy::Off),
        ("fsync_every_64", FsyncPolicy::EveryN(64)),
        ("fsync_always", FsyncPolicy::Always),
    ] {
        let (wall, latency) = best(
            &|| {
                let (dir, cfg) = wal_bench_config(mode, fsync);
                (Some(dir), cfg)
            },
            1,
        );
        modes.push(WalMode {
            mode,
            updates: N,
            submitters: 1,
            wall,
            latency,
        });
    }
    // Group commit under concurrency: same `Always` guarantee (no group
    // is applied or acked before its covering fsync), one fsync per
    // group instead of per update. This is the acceptance row: within
    // 5× of fsync_off.
    let (wall, latency) = best(
        &|| {
            let (dir, cfg) = wal_bench_config("fsync_always_group_8", FsyncPolicy::Always);
            let durability = cfg
                .durability
                .clone()
                .expect("wal mode")
                .with_group_commit(GroupCommitConfig::default());
            (Some(dir), cfg.with_durability(durability))
        },
        8,
    );
    modes.push(WalMode {
        mode: "fsync_always_group_8",
        updates: N,
        submitters: 8,
        wall,
        latency,
    });
    WalOverhead {
        stocks: STOCKS,
        modes,
    }
}

/// The group-commit scaling probe: durable-acked submitters (each waits
/// for its LSN before the next submit) swept over concurrency × knob
/// configurations. Batch sizes and added wait come from the engine's
/// own histograms; ack latency is client-observed.
struct GroupCommitCell {
    submitters: u32,
    max_batch: usize,
    max_delay_us: u64,
    updates: u64,
    wall: Duration,
    fsyncs: u64,
    group_commits: u64,
    batch_p50: u64,
    batch_p99: u64,
    wait_p50_us: u64,
    wait_p99_us: u64,
    ack_p50_us: u64,
    ack_p99_us: u64,
}

struct GroupCommitProbe {
    stocks: u32,
    updates_per_cell: u64,
    cells: Vec<GroupCommitCell>,
}

fn measure_group_commit() -> GroupCommitProbe {
    const STOCKS: u32 = 512;
    const N: u64 = 4_000;
    let mut cells = Vec::new();
    for &(max_batch, max_delay_us) in &[(256usize, 200u64), (32usize, 50u64)] {
        for &submitters in &[1u32, 2, 4, 8] {
            let tag = format!("gc-{max_batch}-{max_delay_us}-{submitters}");
            let (dir, cfg) = wal_bench_config(&tag, FsyncPolicy::Always);
            let durability = cfg.durability.clone().expect("wal mode").with_group_commit(
                GroupCommitConfig::default()
                    .with_max_batch(max_batch)
                    .with_max_delay_us(max_delay_us),
            );
            let (wall, ack, stats) =
                drive_updates(cfg.with_durability(durability), STOCKS, N, submitters, true);
            let _ = std::fs::remove_dir_all(&dir);
            let q = |h: &LogHistogram, p: f64| h.quantile(p).unwrap_or(0);
            cells.push(GroupCommitCell {
                submitters,
                max_batch,
                max_delay_us,
                updates: (N / submitters as u64) * submitters as u64,
                wall,
                fsyncs: stats.wal_fsyncs,
                group_commits: stats.group_commits,
                batch_p50: q(&stats.group_commit_batch, 0.50),
                batch_p99: q(&stats.group_commit_batch, 0.99),
                wait_p50_us: q(&stats.group_commit_wait_us, 0.50),
                wait_p99_us: q(&stats.group_commit_wait_us, 0.99),
                ack_p50_us: q(&ack, 0.50),
                ack_p99_us: q(&ack, 0.99),
            });
        }
    }
    GroupCommitProbe {
        stocks: STOCKS,
        updates_per_cell: N,
        cells,
    }
}

/// One `shard_scaling` throughput row: durable-acked update ingest over
/// a sharded engine.
struct ShardScalingCell {
    shards: u32,
    submitters: u32,
    updates: u64,
    wall: Duration,
    ack_p50_us: u64,
    ack_p99_us: u64,
}

impl ShardScalingCell {
    fn updates_per_sec(&self) -> f64 {
        per_sec(self.updates, self.wall)
    }
}

/// One cross-shard-fraction row: read throughput as spanning aggregates
/// (2PL coordinator) displace single-item queries.
struct CrossFractionCell {
    shards: u32,
    cross_percent: u64,
    queries: u64,
    cross_submitted: u64,
    cross_committed: u64,
    wall: Duration,
}

struct ShardScalingProbe {
    stocks: u32,
    updates_per_submitter: u64,
    cells: Vec<ShardScalingCell>,
    cross_cells: Vec<CrossFractionCell>,
}

/// The sharding acceptance probe.
///
/// **Weak scaling**: each shard gets the same fixed crew of durable-ack
/// submitters (every submit waits for its covering fsync before the
/// next), so the offered load grows with the shard count. A single
/// engine serializes all of it behind one WAL and one group-commit
/// pipeline; N shards run N independent pipelines, so total updates/sec
/// should grow near-linearly — the acceptance bar is ≥3× at 4 shards.
///
/// The WAL runs with a simulated 1 ms flush device (`flush_delay`):
/// the probed resource is *flush latency*, blocking IO that per-shard
/// WAL streams genuinely overlap — including on a single-core host,
/// where a sleeping shard frees the CPU exactly like a real disk would.
/// Without the simulated device the numbers just measure the host's
/// (often virtualized, flush-serializing) page-cache sync cost, which
/// caps scaling regardless of architecture.
///
/// **Cross-fraction sweep**: at 4 shards, a rising fraction of reads
/// become spanning portfolios through the 2PL coordinator, measuring
/// what cross-shard coordination costs relative to pure single-item
/// traffic.
fn measure_shard_scaling() -> ShardScalingProbe {
    const STOCKS: u32 = 256;
    const N_PER_SUBMITTER: u64 = 250;
    // One durable-ack submitter per shard: each shard's pipeline is then
    // bound by its own flush latency, the resource independent per-shard
    // WAL streams parallelize.
    const SUBMITTERS_PER_SHARD: u32 = 1;

    let sharded_config = |tag: &str| -> (PathBuf, ShardConfig) {
        let dir = std::env::temp_dir().join(format!("quts-shard-bench-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = EngineConfig::default().with_durability(
            DurabilityConfig::new(&dir)
                .with_fsync(FsyncPolicy::Always)
                .with_snapshot_every(u64::MAX)
                .with_flush_delay(Duration::from_millis(1))
                .with_group_commit(
                    GroupCommitConfig::default()
                        .with_max_batch(256)
                        .with_max_delay_us(200),
                ),
        );
        (dir, ShardConfig::new(1).with_engine(engine))
    };

    let mut cells = Vec::new();
    for &shards in &[1u32, 2, 4, 8] {
        let (dir, cfg) = sharded_config(&format!("scale{shards}"));
        let cfg = ShardConfig { shards, ..cfg };
        let map = ShardMap::new(STOCKS, shards);
        let engine = ShardedEngine::try_start(Store::with_synthetic_stocks(STOCKS), cfg)
            .expect("sharded WAL dirs are creatable");
        let handle = engine.handle();
        let started = Instant::now();
        let workers: Vec<_> = (0..shards)
            .flat_map(|k| (0..SUBMITTERS_PER_SHARD).map(move |w| (k, w)))
            .map(|(k, w)| {
                let h = handle.clone();
                let members: Vec<quts_db::StockId> = map.members(k).to_vec();
                std::thread::spawn(move || {
                    let mut hist = LogHistogram::default();
                    for i in 0..N_PER_SUBMITTER {
                        let stock = members[(i as usize + w as usize) % members.len()];
                        let trade = Trade {
                            stock,
                            price: 100.0 + (i % 97) as f64 * 0.25,
                            volume: 100 + i % 900,
                            trade_time_ms: i,
                        };
                        let t0 = Instant::now();
                        let ticket = loop {
                            match h.submit_update_durable(trade) {
                                Ok(t) => break t,
                                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                                Err(e) => panic!("shard probe submission failed: {e:?}"),
                            }
                        };
                        ticket
                            .recv_timeout(Duration::from_secs(30))
                            .expect("durable ack");
                        hist.record(t0.elapsed().as_micros() as u64);
                    }
                    hist
                })
            })
            .collect();
        let mut ack = LogHistogram::default();
        for w in workers {
            ack.merge(&w.join().expect("submitter thread"));
        }
        let wall = started.elapsed();
        let stats = engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let submitted = N_PER_SUBMITTER * (shards * SUBMITTERS_PER_SHARD) as u64;
        // Every durable ack implies a WAL append on the owning shard.
        let appended: u64 = stats.iter().map(|s| s.wal_appended).sum();
        assert_eq!(appended, submitted, "shard probe lost WAL appends");
        let q = |h: &LogHistogram, p: f64| h.quantile(p).unwrap_or(0);
        cells.push(ShardScalingCell {
            shards,
            submitters: shards * SUBMITTERS_PER_SHARD,
            updates: submitted,
            wall,
            ack_p50_us: q(&ack, 0.50),
            ack_p99_us: q(&ack, 0.99),
        });
    }

    // Cross-shard fraction sweep at 4 shards, in-memory (the coordinator
    // cost is scheduling, not IO).
    let mut cross_cells = Vec::new();
    const CROSS_SHARDS: u32 = 4;
    const READERS: u32 = 4;
    const QUERIES_PER_READER: u64 = 250;
    let map = ShardMap::new(STOCKS, CROSS_SHARDS);
    let span_all: Vec<(quts_db::StockId, f64)> =
        (0..CROSS_SHARDS).map(|k| (map.members(k)[0], 1.0)).collect();
    for &cross_percent in &[0u64, 5, 20] {
        let engine = ShardedEngine::start(
            Store::with_synthetic_stocks(STOCKS),
            ShardConfig::new(CROSS_SHARDS).with_engine(EngineConfig::default()),
        );
        let handle = engine.handle();
        let started = Instant::now();
        let workers: Vec<_> = (0..READERS)
            .map(|r| {
                let h = handle.clone();
                let span_all = span_all.clone();
                let members: Vec<quts_db::StockId> =
                    map.members(r % CROSS_SHARDS).to_vec();
                std::thread::spawn(move || {
                    let qc = quts_qc::QualityContract::step(5.0, 1000.0, 5.0, 1)
                        .with_lifetime_ms(30_000.0);
                    for i in 0..QUERIES_PER_READER {
                        let op = if cross_percent > 0 && i % (100 / cross_percent) == 0 {
                            quts_db::QueryOp::Portfolio(span_all.clone())
                        } else {
                            quts_db::QueryOp::Lookup(members[i as usize % members.len()])
                        };
                        let ticket = loop {
                            match h.submit_query(op.clone(), qc.clone()) {
                                Ok(t) => break t,
                                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                                Err(e) => panic!("cross probe submission failed: {e:?}"),
                            }
                        };
                        ticket
                            .recv_timeout(Duration::from_secs(30))
                            .expect("query resolves");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("reader thread");
        }
        let wall = started.elapsed();
        let cross = handle.cross_shard_stats();
        engine.shutdown();
        cross_cells.push(CrossFractionCell {
            shards: CROSS_SHARDS,
            cross_percent,
            queries: READERS as u64 * QUERIES_PER_READER,
            cross_submitted: cross.submitted,
            cross_committed: cross.committed,
            wall,
        });
    }

    ShardScalingProbe {
        stocks: STOCKS,
        updates_per_submitter: N_PER_SUBMITTER,
        cells,
        cross_cells,
    }
}

/// One replication-lag measurement: the same update feed shipped to one
/// replica over a clean link and over each [`LinkFaultPlan`] fault
/// class, timed until the replica has applied everything. Shipping
/// throughput counts retransmissions (duplicates, resume-from-LSN
/// catch-ups); the lag percentiles come from the ship registry's
/// aggregated histograms — the same data `METRICS` exposes as
/// `quts_repl_lag_frames` / `quts_repl_apply_lag_us`.
struct ReplicationLagCell {
    link: &'static str,
    updates: u64,
    frames_shipped: u64,
    wall: Duration,
    apply_lag_p50_us: u64,
    apply_lag_p99_us: u64,
    lag_frames_p50: u64,
    lag_frames_p99: u64,
}

struct ReplicationLagProbe {
    stocks: u32,
    updates_per_cell: u64,
    cells: Vec<ReplicationLagCell>,
}

fn measure_replication_lag() -> ReplicationLagProbe {
    const STOCKS: u32 = 64;
    const N: u64 = 1_024;
    let links: [(&'static str, Option<LinkFaultPlan>); 5] = [
        ("clean", None),
        (
            "drop_every_16",
            Some(LinkFaultPlan::default().drop_frame_every(16)),
        ),
        (
            "duplicate_every_16",
            Some(LinkFaultPlan::default().duplicate_frame_every(16)),
        ),
        (
            "delay_100us",
            Some(LinkFaultPlan::default().delay_per_frame(Duration::from_micros(100))),
        ),
        (
            "disconnect_every_256",
            Some(LinkFaultPlan::default().disconnect_mid_frame_every(256)),
        ),
    ];
    let mut cells = Vec::new();
    for (link, fault) in links {
        let base =
            std::env::temp_dir().join(format!("quts-repl-lag-{}-{link}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let primary_dir = base.join("primary");
        std::fs::create_dir_all(&primary_dir).expect("mkdir");
        // Fsync-always so every append is immediately visible to the
        // shipper's tailer (the shipper only ships durable frames).
        let engine = Engine::start(
            Store::with_synthetic_stocks(STOCKS),
            EngineConfig::default().with_durability(
                DurabilityConfig::new(&primary_dir)
                    .with_fsync(FsyncPolicy::Always)
                    .with_snapshot_every(u64::MAX),
            ),
        );
        let mut ship_config = ShipConfig::default();
        if let Some(fault) = fault {
            ship_config = ship_config.with_fault(fault);
        }
        let ship = ShipListener::start(primary_dir.clone(), ship_config).expect("ship listener");
        let replica = Replica::start(
            ship.addr(),
            ReplicaConfig::new("bench", base.join("replica"))
                .with_fsync(FsyncPolicy::Off)
                .with_ack_every(1)
                .with_backoff(Duration::from_millis(1), Duration::from_millis(20)),
        )
        .expect("replica");

        let started = Instant::now();
        for i in 0..N {
            let trade = probe_trade(STOCKS, i);
            loop {
                match engine.handle().submit_update(trade) {
                    Ok(()) => break,
                    Err(SubmitError::QueueFull) => std::thread::yield_now(),
                    Err(e) => panic!("replication probe submission failed: {e:?}"),
                }
            }
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        while replica.stats().applied_lsn < N {
            assert!(
                Instant::now() < deadline,
                "replica never caught up over the {link} link"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let wall = started.elapsed();
        let registry = ship.registry();
        let frames_shipped = registry
            .peers()
            .iter()
            .map(|p| p.frames_shipped)
            .sum::<u64>();
        let apply_lag = registry.apply_lag_histogram();
        let lag_frames = registry.lag_frames_histogram();
        let q = |h: &LogHistogram, p: f64| h.quantile(p).unwrap_or(0);
        cells.push(ReplicationLagCell {
            link,
            updates: N,
            frames_shipped,
            wall,
            apply_lag_p50_us: q(&apply_lag, 0.50),
            apply_lag_p99_us: q(&apply_lag, 0.99),
            lag_frames_p50: q(&lag_frames, 0.50),
            lag_frames_p99: q(&lag_frames, 0.99),
        });

        replica.shutdown();
        ship.shutdown();
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&base);
    }
    ReplicationLagProbe {
        stocks: STOCKS,
        updates_per_cell: N,
        cells,
    }
}

/// One failover-MTTR measurement: a two-replica cluster under the
/// controller, killed (scheduler panic), partitioned (links go dark) or
/// manually deposed (`failover_now`, the zombie-demotion path), timed
/// through the controller's own phase clocks — detection, promotion,
/// router re-point — the same numbers `METRICS` exposes as
/// `quts_failover_detect_us` / `quts_failover_mttr_us`.
struct FailoverMttrCell {
    scenario: &'static str,
    iterations: u32,
    detect_p50_us: u64,
    detect_p99_us: u64,
    promote_p50_us: u64,
    promote_p99_us: u64,
    repoint_p50_us: u64,
    repoint_p99_us: u64,
    mttr_p50_us: u64,
    mttr_p99_us: u64,
}

struct FailoverMttrProbe {
    replicas: u32,
    baseline_updates: u64,
    cells: Vec<FailoverMttrCell>,
}

fn measure_failover_mttr() -> FailoverMttrProbe {
    const STOCKS: u32 = 16;
    const N: u64 = 128;
    const ITERS: u32 = 5;
    let scenarios: [&'static str; 3] = ["kill", "partition", "zombie_manual"];
    let exact = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };
    let mut cells = Vec::new();
    for scenario in scenarios {
        let (mut detect, mut promote, mut repoint, mut mttr) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for iter in 0..ITERS {
            let base = std::env::temp_dir().join(format!(
                "quts-failover-mttr-{}-{scenario}-{iter}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&base);
            let primary_dir = base.join("primary");
            std::fs::create_dir_all(&primary_dir).expect("mkdir");
            let durable = |dir: &std::path::Path| {
                EngineConfig::default().with_durability(
                    DurabilityConfig::new(dir)
                        .with_fsync(FsyncPolicy::Always)
                        .with_snapshot_every(u64::MAX),
                )
            };
            let mut engine_cfg = durable(&primary_dir);
            if scenario == "kill" {
                engine_cfg = engine_cfg.with_fault_plan(FaultPlan::default().panic_after(N + 4));
            }
            let engine = Engine::try_start(Store::with_synthetic_stocks(STOCKS), engine_cfg)
                .expect("primary");
            let mut ship_cfg = ShipConfig::default().with_heartbeat(Duration::from_millis(10));
            if scenario == "partition" {
                ship_cfg =
                    ship_cfg.with_fault(LinkFaultPlan::default().partition_after(N + 4));
            }
            let ship = ShipListener::start(primary_dir.clone(), ship_cfg).expect("ship listener");
            let replica_cfg = |name: &str| {
                ReplicaConfig::new(name, base.join(name))
                    .with_fsync(FsyncPolicy::Always)
                    .with_ack_every(1)
                    .with_backoff(Duration::from_millis(1), Duration::from_millis(20))
            };
            let r1 = Replica::start(ship.addr(), replica_cfg("r1")).expect("r1");
            let r2 = Replica::start(ship.addr(), replica_cfg("r2")).expect("r2");
            let router = std::sync::Arc::new(Router::new(
                engine.handle(),
                RouterConfig::default(),
            ));
            router.add_replica(r1.handle());
            router.add_replica(r2.handle());
            let auto = scenario != "zombie_manual";
            let cluster = Cluster::start(
                engine,
                ship,
                vec![(r1, replica_cfg("r1")), (r2, replica_cfg("r2"))],
                router,
                durable(&primary_dir),
                ShipConfig::default().with_heartbeat(Duration::from_millis(10)),
                ControllerConfig::default()
                    .with_detection(2, Duration::from_millis(100))
                    .with_probes(Duration::from_millis(5), Duration::from_millis(20), 2)
                    .with_poll_interval(Duration::from_millis(10))
                    .with_auto_failover(auto),
            );

            // Replica-acked baseline, so the promotion has real history
            // to cover.
            for i in 0..N {
                let lsn = cluster
                    .primary()
                    .submit_update_durable(probe_trade(STOCKS, i))
                    .expect("admitted")
                    .recv()
                    .expect("durable");
                debug_assert!(lsn >= 1);
            }
            let deadline = Instant::now() + Duration::from_secs(60);
            while cluster
                .router()
                .replica_stats()
                .iter()
                .filter(|s| s.durable_lsn >= N)
                .count()
                < 2
            {
                assert!(
                    Instant::now() < deadline,
                    "failover probe baseline never replicated ({scenario})"
                );
                std::thread::sleep(Duration::from_millis(1));
            }

            let report = if auto {
                // Push the primary (or its links) over the fault point
                // with live fire-and-forget load, then let the
                // controller notice and recover on its own.
                let deadline = Instant::now() + Duration::from_secs(60);
                let mut i = N;
                while cluster.stats().failovers == 0 {
                    let _ = cluster.primary().submit_update(probe_trade(STOCKS, i));
                    i += 1;
                    assert!(
                        Instant::now() < deadline,
                        "failover probe: controller never fired ({scenario})"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                cluster.reports().remove(0)
            } else {
                // The operator deposes a live primary: detection is
                // free, promotion + re-point are the whole MTTR.
                cluster.failover_now().expect("manual failover")
            };
            detect.push(report.detect_us);
            promote.push(report.promote_us);
            repoint.push(report.repoint_us);
            mttr.push(report.mttr_us);

            cluster.shutdown();
            let _ = std::fs::remove_dir_all(&base);
        }
        detect.sort_unstable();
        promote.sort_unstable();
        repoint.sort_unstable();
        mttr.sort_unstable();
        cells.push(FailoverMttrCell {
            scenario,
            iterations: ITERS,
            detect_p50_us: exact(&detect, 0.50),
            detect_p99_us: exact(&detect, 0.99),
            promote_p50_us: exact(&promote, 0.50),
            promote_p99_us: exact(&promote, 0.99),
            repoint_p50_us: exact(&repoint, 0.50),
            repoint_p99_us: exact(&repoint, 0.99),
            mttr_p50_us: exact(&mttr, 0.50),
            mttr_p99_us: exact(&mttr, 0.99),
        });
    }
    FailoverMttrProbe {
        replicas: 2,
        baseline_updates: N,
        cells,
    }
}

/// Hand-rolled JSON (the workspace vendors no serializer by design).
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: u32,
    jobs: usize,
    perfs: &[ExperimentPerf],
    baseline: &[(&str, Duration)],
    overhead: &TraceOverhead,
    wal: &WalOverhead,
    gc: &GroupCommitProbe,
    repl: &ReplicationLagProbe,
    fo: &FailoverMttrProbe,
    shard: &ShardScalingProbe,
) -> String {
    let total_wall: Duration = perfs.iter().map(|p| p.wall).sum();
    let total_events: u64 = perfs.iter().map(|p| p.events).sum();
    let total_dispatches: u64 = perfs.iter().map(|p| p.dispatches).sum();
    let total_sims: usize = perfs.iter().map(|p| p.sims).sum();
    let baseline_wall: Duration = baseline.iter().map(|&(_, w)| w).sum();
    let baseline_of = |name: &str| baseline.iter().find(|&&(n, _)| n == name).map(|&(_, w)| w);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"quts_run_all\",\n");
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"total_wall_ms\": {:.3},\n", ms(total_wall)));
    s.push_str(&format!("  \"total_sims\": {total_sims},\n"));
    s.push_str(&format!("  \"total_events\": {total_events},\n"));
    s.push_str(&format!(
        "  \"total_events_per_sec\": {:.1},\n",
        per_sec(total_events, total_wall)
    ));
    s.push_str(&format!(
        "  \"total_dispatches_per_sec\": {:.1},\n",
        per_sec(total_dispatches, total_wall)
    ));
    s.push_str("  \"sequential_baseline\": {\n");
    s.push_str("    \"jobs\": 1,\n");
    s.push_str(&format!(
        "    \"total_wall_ms\": {:.3},\n",
        ms(baseline_wall)
    ));
    let speedup = if total_wall.as_secs_f64() > 0.0 {
        baseline_wall.as_secs_f64() / total_wall.as_secs_f64()
    } else {
        1.0
    };
    s.push_str(&format!("    \"speedup\": {speedup:.3}\n"));
    s.push_str("  },\n");
    s.push_str("  \"trace_overhead\": {\n");
    s.push_str(&format!("    \"sim_events\": {},\n", overhead.events));
    s.push_str(&format!(
        "    \"quts_trace_off_ms\": {:.3},\n",
        ms(overhead.off)
    ));
    s.push_str(&format!(
        "    \"quts_trace_full_ms\": {:.3},\n",
        ms(overhead.full)
    ));
    s.push_str(&format!(
        "    \"full_overhead_pct\": {:.2}\n",
        overhead.full_overhead_pct()
    ));
    s.push_str("  },\n");
    s.push_str("  \"wal_overhead\": {\n");
    s.push_str(&format!("    \"stocks\": {},\n", wal.stocks));
    s.push_str("    \"modes\": [\n");
    let base_per_update = wal
        .modes
        .iter()
        .find(|m| m.mode == "no_wal")
        .map(|m| m.per_update().as_secs_f64())
        .unwrap_or(0.0);
    for (i, m) in wal.modes.iter().enumerate() {
        let overhead_pct = if base_per_update > 0.0 {
            (m.per_update().as_secs_f64() / base_per_update - 1.0) * 100.0
        } else {
            0.0
        };
        s.push_str("      {\n");
        s.push_str(&format!("        \"mode\": \"{}\",\n", m.mode));
        s.push_str(&format!("        \"updates\": {},\n", m.updates));
        s.push_str(&format!("        \"submitters\": {},\n", m.submitters));
        s.push_str(&format!("        \"wall_ms\": {:.3},\n", ms(m.wall)));
        s.push_str(&format!(
            "        \"updates_per_sec\": {:.1},\n",
            per_sec(m.updates, m.wall)
        ));
        s.push_str(&format!(
            "        \"p50_us\": {},\n",
            m.latency.quantile(0.50).unwrap_or(0)
        ));
        s.push_str(&format!(
            "        \"p99_us\": {},\n",
            m.latency.quantile(0.99).unwrap_or(0)
        ));
        s.push_str(&format!(
            "        \"overhead_pct_vs_no_wal\": {overhead_pct:.2}\n"
        ));
        s.push_str(if i + 1 == wal.modes.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"group_commit\": {\n");
    s.push_str(&format!("    \"stocks\": {},\n", gc.stocks));
    s.push_str(&format!(
        "    \"updates_per_cell\": {},\n",
        gc.updates_per_cell
    ));
    s.push_str("    \"cells\": [\n");
    for (i, c) in gc.cells.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"submitters\": {},\n", c.submitters));
        s.push_str(&format!("        \"max_batch\": {},\n", c.max_batch));
        s.push_str(&format!("        \"max_delay_us\": {},\n", c.max_delay_us));
        s.push_str(&format!("        \"updates\": {},\n", c.updates));
        s.push_str(&format!("        \"wall_ms\": {:.3},\n", ms(c.wall)));
        s.push_str(&format!(
            "        \"updates_per_sec\": {:.1},\n",
            per_sec(c.updates, c.wall)
        ));
        s.push_str(&format!("        \"fsyncs\": {},\n", c.fsyncs));
        s.push_str(&format!(
            "        \"group_commits\": {},\n",
            c.group_commits
        ));
        s.push_str(&format!("        \"batch_p50\": {},\n", c.batch_p50));
        s.push_str(&format!("        \"batch_p99\": {},\n", c.batch_p99));
        s.push_str(&format!("        \"wait_p50_us\": {},\n", c.wait_p50_us));
        s.push_str(&format!("        \"wait_p99_us\": {},\n", c.wait_p99_us));
        s.push_str(&format!("        \"ack_p50_us\": {},\n", c.ack_p50_us));
        s.push_str(&format!("        \"ack_p99_us\": {}\n", c.ack_p99_us));
        s.push_str(if i + 1 == gc.cells.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"replication_lag\": {\n");
    s.push_str(&format!("    \"stocks\": {},\n", repl.stocks));
    s.push_str(&format!(
        "    \"updates_per_cell\": {},\n",
        repl.updates_per_cell
    ));
    s.push_str("    \"cells\": [\n");
    for (i, c) in repl.cells.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"link\": \"{}\",\n", c.link));
        s.push_str(&format!("        \"updates\": {},\n", c.updates));
        s.push_str(&format!(
            "        \"frames_shipped\": {},\n",
            c.frames_shipped
        ));
        s.push_str(&format!("        \"wall_ms\": {:.3},\n", ms(c.wall)));
        s.push_str(&format!(
            "        \"frames_per_sec\": {:.1},\n",
            per_sec(c.frames_shipped, c.wall)
        ));
        s.push_str(&format!(
            "        \"apply_lag_p50_us\": {},\n",
            c.apply_lag_p50_us
        ));
        s.push_str(&format!(
            "        \"apply_lag_p99_us\": {},\n",
            c.apply_lag_p99_us
        ));
        s.push_str(&format!(
            "        \"lag_frames_p50\": {},\n",
            c.lag_frames_p50
        ));
        s.push_str(&format!(
            "        \"lag_frames_p99\": {}\n",
            c.lag_frames_p99
        ));
        s.push_str(if i + 1 == repl.cells.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"failover_mttr\": {\n");
    s.push_str(&format!("    \"replicas\": {},\n", fo.replicas));
    s.push_str(&format!(
        "    \"baseline_updates\": {},\n",
        fo.baseline_updates
    ));
    s.push_str("    \"cells\": [\n");
    for (i, c) in fo.cells.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"scenario\": \"{}\",\n", c.scenario));
        s.push_str(&format!("        \"iterations\": {},\n", c.iterations));
        s.push_str(&format!(
            "        \"detect_p50_us\": {},\n",
            c.detect_p50_us
        ));
        s.push_str(&format!(
            "        \"detect_p99_us\": {},\n",
            c.detect_p99_us
        ));
        s.push_str(&format!(
            "        \"promote_p50_us\": {},\n",
            c.promote_p50_us
        ));
        s.push_str(&format!(
            "        \"promote_p99_us\": {},\n",
            c.promote_p99_us
        ));
        s.push_str(&format!(
            "        \"repoint_p50_us\": {},\n",
            c.repoint_p50_us
        ));
        s.push_str(&format!(
            "        \"repoint_p99_us\": {},\n",
            c.repoint_p99_us
        ));
        s.push_str(&format!("        \"mttr_p50_us\": {},\n", c.mttr_p50_us));
        s.push_str(&format!("        \"mttr_p99_us\": {}\n", c.mttr_p99_us));
        s.push_str(if i + 1 == fo.cells.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"shard_scaling\": {\n");
    s.push_str(&format!("    \"stocks\": {},\n", shard.stocks));
    s.push_str(&format!(
        "    \"updates_per_submitter\": {},\n",
        shard.updates_per_submitter
    ));
    let one_shard_rate = shard
        .cells
        .iter()
        .find(|c| c.shards == 1)
        .map(ShardScalingCell::updates_per_sec)
        .unwrap_or(0.0);
    s.push_str("    \"cells\": [\n");
    for (i, c) in shard.cells.iter().enumerate() {
        let speedup = if one_shard_rate > 0.0 {
            c.updates_per_sec() / one_shard_rate
        } else {
            0.0
        };
        s.push_str("      {\n");
        s.push_str(&format!("        \"shards\": {},\n", c.shards));
        s.push_str(&format!("        \"submitters\": {},\n", c.submitters));
        s.push_str(&format!("        \"updates\": {},\n", c.updates));
        s.push_str(&format!("        \"wall_ms\": {:.3},\n", ms(c.wall)));
        s.push_str(&format!(
            "        \"updates_per_sec\": {:.1},\n",
            c.updates_per_sec()
        ));
        s.push_str(&format!(
            "        \"speedup_vs_1_shard\": {speedup:.3},\n"
        ));
        s.push_str(&format!("        \"ack_p50_us\": {},\n", c.ack_p50_us));
        s.push_str(&format!("        \"ack_p99_us\": {}\n", c.ack_p99_us));
        s.push_str(if i + 1 == shard.cells.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ],\n");
    s.push_str("    \"cross_fraction\": [\n");
    for (i, c) in shard.cross_cells.iter().enumerate() {
        s.push_str("      {\n");
        s.push_str(&format!("        \"shards\": {},\n", c.shards));
        s.push_str(&format!(
            "        \"cross_percent\": {},\n",
            c.cross_percent
        ));
        s.push_str(&format!("        \"queries\": {},\n", c.queries));
        s.push_str(&format!(
            "        \"cross_submitted\": {},\n",
            c.cross_submitted
        ));
        s.push_str(&format!(
            "        \"cross_committed\": {},\n",
            c.cross_committed
        ));
        s.push_str(&format!("        \"wall_ms\": {:.3},\n", ms(c.wall)));
        s.push_str(&format!(
            "        \"queries_per_sec\": {:.1}\n",
            per_sec(c.queries, c.wall)
        ));
        s.push_str(if i + 1 == shard.cross_cells.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"experiments\": [\n");
    for (i, p) in perfs.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", p.name));
        s.push_str(&format!("      \"wall_ms\": {:.3},\n", ms(p.wall)));
        s.push_str(&format!("      \"sims\": {},\n", p.sims));
        s.push_str(&format!("      \"events\": {},\n", p.events));
        s.push_str(&format!(
            "      \"events_per_sec\": {:.1},\n",
            p.events_per_sec()
        ));
        s.push_str(&format!(
            "      \"dispatches_per_sec\": {:.1},\n",
            p.dispatches_per_sec()
        ));
        s.push_str(&format!("      \"sim_wall_ms\": {:.3},\n", ms(p.sim_wall)));
        s.push_str(&format!(
            "      \"baseline_wall_ms\": {:.3}\n",
            ms(baseline_of(p.name).unwrap_or(p.wall))
        ));
        s.push_str(if i + 1 == perfs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
