//! Runs every experiment binary in sequence — the one-shot reproduction
//! of the paper's whole evaluation section. Each experiment is also
//! available as its own binary; this wrapper simply invokes them in
//! paper order with a shared scale.

use std::process::Command;

fn main() {
    let scale = quts_bench::harness::experiment_scale();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");

    let experiments = [
        "table3_workload",
        "fig5_trace",
        "fig1_tradeoff",
        "fig6_step_linear",
        "fig7_fig8_spectrum",
        "fig9_adaptability",
        "fig10_sensitivity",
        "ablations",
    ];

    let mut failed = Vec::new();
    for name in experiments {
        println!("################################################################");
        let status = Command::new(dir.join(name))
            .arg("--scale")
            .arg(scale.to_string())
            .status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("experiment {name} failed: {other:?}");
                failed.push(name);
            }
        }
        println!();
    }
    if !failed.is_empty() {
        eprintln!("failed experiments: {failed:?}");
        std::process::exit(1);
    }
    println!("all experiments completed");
}
