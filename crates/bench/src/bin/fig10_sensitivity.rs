//! Figure 10 — sensitivity of QUTS to its two parameters.
//!
//! (a) the adaptation period ω swept from 0.1 s to 100 s barely moves
//! total profit; (b) the atom time τ swept from 1 ms to 1000 ms peaks
//! around 10 ms — just above the maximum query execution time — and
//! degrades at both extremes (contention at 1 ms; coarse allocation at
//! 1000 ms). Setup as in Figure 9 (phase-flipping QCs).

use quts_bench::{harness, paper_trace, run_policy, Policy};
use quts_metrics::{table::pct, TextTable};
use quts_sched::QutsConfig;
use quts_sim::SimDuration;
use quts_workload::{qcgen, QcPreset, QcShape};

fn main() {
    let scale = harness::experiment_scale();
    harness::banner("Figure 10: sensitivity of QUTS to omega and tau", scale);

    let mut trace = paper_trace(scale, 1);
    qcgen::assign_qcs(&mut trace, QcPreset::Phases, QcShape::Step, 7);

    // (a) adaptation period sweep, tau fixed at the 10 ms default.
    println!("(a) adaptation period omega (tau = 10 ms)");
    let mut t = TextTable::new(["omega", "total profit %"]);
    let mut omega_profits = Vec::new();
    for omega_ms in [100u64, 500, 1_000, 5_000, 10_000, 50_000, 100_000] {
        let cfg = QutsConfig::default().with_omega(SimDuration::from_ms(omega_ms));
        let r = run_policy(&trace, Policy::Quts(cfg));
        t.row([
            format!("{:.1} s", omega_ms as f64 / 1000.0),
            pct(r.total_pct()),
        ]);
        omega_profits.push(r.total_pct());
    }
    print!("{}", t.render());
    let spread = omega_profits
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - omega_profits.iter().cloned().fold(f64::INFINITY, f64::min);
    println!();
    println!(
        "shape check: profit varies little across three orders of magnitude of omega: \
         spread {:.1} pp (paper: 'very little')",
        spread * 100.0
    );

    // (b) atom time sweep, omega fixed at the 1000 ms default.
    println!();
    println!("(b) atom time tau (omega = 1000 ms)");
    let mut t = TextTable::new(["tau", "total profit %"]);
    let mut tau_profits = Vec::new();
    let taus = [1u64, 5, 10, 50, 100, 500, 1_000];
    for &tau_ms in &taus {
        let cfg = QutsConfig::default().with_tau(SimDuration::from_ms(tau_ms));
        let r = run_policy(&trace, Policy::Quts(cfg));
        t.row([format!("{tau_ms} ms"), pct(r.total_pct())]);
        tau_profits.push(r.total_pct());
    }
    print!("{}", t.render());
    let best = tau_profits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| taus[i])
        .unwrap();
    println!();
    println!(
        "best tau: {best} ms (paper: ~10 ms, 'above the maximum execution time of most queries')"
    );
    println!(
        "shape check: tau = 1000 ms is not better than the 5-50 ms band: {}",
        tau_profits[6] <= tau_profits[1].max(tau_profits[2]).max(tau_profits[3]) + 1e-9
    );
}
