//! Thin command-line wrapper; the experiment itself lives in
//! `quts_bench::experiments::fig10_sensitivity`.

fn main() {
    let scale = quts_bench::harness::experiment_scale();
    let jobs = quts_bench::jobs();
    let mut out = std::io::stdout().lock();
    quts_bench::experiments::fig10_sensitivity::run(scale, jobs, &mut out)
        .expect("write to stdout");
}
