//! Figures 2 and 3 — the paper's example Quality Contracts, evaluated.
//!
//! Figure 2: a step QC with `qosmax = $1, rtmax = 50 ms, qodmax = $2,
//! uumax = 1`. Figure 3: a linear QC with `qosmax = $2, rtmax = 50 ms,
//! qodmax = $1, uumax = 2`. This binary renders both profit surfaces as
//! tables, which doubles as an executable check that the framework
//! evaluates the published examples exactly.

use quts_metrics::TextTable;
use quts_qc::QualityContract;

fn render(name: &str, qc: &QualityContract, uus: &[f64]) {
    println!("{name}");
    let mut header = vec!["rt (ms)".to_string(), "QoS $".to_string()];
    for uu in uus {
        header.push(format!("total $ @ #uu={uu}"));
    }
    let mut t = TextTable::new(header);
    for rt in [0.0, 10.0, 25.0, 40.0, 49.9, 50.0, 75.0, 100.0] {
        let mut row = vec![format!("{rt:.1}"), format!("{:.2}", qc.qos_profit(rt))];
        for &uu in uus {
            row.push(format!("{:.2}", qc.total_profit(rt, uu)));
        }
        t.row(row);
    }
    print!("{}", t.render());
    println!(
        "vrd priority: {:.4}   lifetime: {:.0} ms\n",
        qc.vrd_priority(),
        qc.default_lifetime_ms()
    );
}

fn main() {
    println!("== Figures 2-3: the paper's example Quality Contracts ==\n");

    let fig2 = QualityContract::step(1.0, 50.0, 2.0, 1);
    render(
        "Figure 2 (step): qosmax=$1 rtmax=50ms qodmax=$2 uumax=1",
        &fig2,
        &[0.0, 1.0, 2.0],
    );
    assert_eq!(fig2.qos_profit(20.0), 1.0);
    assert_eq!(fig2.qos_profit(60.0), 0.0);
    assert_eq!(fig2.qod_profit(0.0), 2.0);
    assert_eq!(fig2.qod_profit(1.0), 0.0);

    let fig3 = QualityContract::linear(2.0, 50.0, 1.0, 2);
    render(
        "Figure 3 (linear): qosmax=$2 rtmax=50ms qodmax=$1 uumax=2",
        &fig3,
        &[0.0, 1.0, 2.0],
    );
    assert_eq!(fig3.qos_profit(25.0), 1.0);
    assert_eq!(fig3.qod_profit(1.0), 0.5);
    assert_eq!(fig3.qod_profit(2.0), 0.0);

    println!("all published point values verified");
}
