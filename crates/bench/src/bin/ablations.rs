//! Ablations over the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they quantify the assumptions the
//! reproduction had to make and the knobs the paper leaves open:
//!
//! 1. the aging factor α ("the exact α does not matter much"),
//! 2. the staleness aggregation for multi-item queries (Max/Sum/Mean),
//! 3. QoS-Dependent vs QoS-Independent contract composition,
//! 4. the update register table's queue-position inheritance (vs naive
//!    tail re-entry, which starves hot items),
//! 5. the low-level query policy under QUTS (VRD/EDF/FIFO/profit-density).

use quts_bench::{harness, paper_trace, run_policy, run_policy_with, Policy};
use quts_metrics::{table::pct, TextTable};
use quts_qc::{Composition, StalenessAggregation};
use quts_sched::{QueryOrder, QutsConfig};
use quts_sim::{engine::UpdateReentry, SimConfig};
use quts_workload::{qcgen, QcPreset, QcShape};

fn main() {
    let scale = harness::experiment_scale();
    harness::banner("Ablations over the reproduction's design choices", scale);

    let base = paper_trace(scale, 1);
    let mut balanced = base.clone();
    qcgen::assign_qcs(&mut balanced, QcPreset::Balanced, QcShape::Step, 7);
    let mut qod_heavy = base.clone();
    qcgen::assign_qcs(
        &mut qod_heavy,
        QcPreset::Spectrum { k: 9 },
        QcShape::Step,
        7,
    );
    let mut phases = base;
    qcgen::assign_qcs(&mut phases, QcPreset::Phases, QcShape::Step, 7);

    // 1. Aging factor α (phase workload: adaptation speed matters most).
    println!("1. aging factor alpha (QUTS, Figure 9 workload)");
    let mut t = TextTable::new(["alpha", "total profit %"]);
    for alpha in [0.05, 0.1, 0.2, 0.5, 1.0] {
        let r = run_policy(
            &phases,
            Policy::Quts(QutsConfig::default().with_alpha(alpha)),
        );
        t.row([format!("{alpha}"), pct(r.total_pct())]);
    }
    print!("{}", t.render());
    println!();

    // 2. Staleness aggregation for multi-item queries.
    println!("2. staleness aggregation (QUTS, balanced QCs)");
    let mut t = TextTable::new(["aggregation", "total profit %", "#uu"]);
    for (agg, name) in [
        (StalenessAggregation::Max, "max"),
        (StalenessAggregation::Sum, "sum"),
        (StalenessAggregation::Mean, "mean"),
    ] {
        let sim = SimConfig {
            staleness_agg: agg,
            ..SimConfig::default()
        };
        let r = run_policy_with(&balanced, Policy::quts_default(), sim);
        t.row([
            name.to_string(),
            pct(r.total_pct()),
            format!("{:.3}", r.avg_staleness()),
        ]);
    }
    print!("{}", t.render());
    println!();

    // 3. Composition mode.
    println!("3. contract composition (QUTS, balanced QCs)");
    let mut t = TextTable::new(["composition", "QoS%", "QoD%", "total%"]);
    for (comp, name) in [
        (Composition::QoSIndependent, "QoS-independent (paper)"),
        (Composition::QoSDependent, "QoS-dependent"),
    ] {
        let mut trace = balanced.clone();
        for q in &mut trace.queries {
            q.qc.composition = comp;
        }
        let r = run_policy(&trace, Policy::quts_default());
        t.row([
            name.to_string(),
            pct(r.qos_pct()),
            pct(r.qod_pct()),
            pct(r.total_pct()),
        ]);
    }
    print!("{}", t.render());
    println!();

    // 4. Register-table queue-position inheritance.
    println!("4. update re-entry semantics (QH, QoD-heavy QCs)");
    let mut t = TextTable::new([
        "re-entry",
        "total%",
        "mean #uu",
        "worst #uu",
        "mean apply delay",
    ]);
    for (mode, name) in [
        (UpdateReentry::InheritPosition, "inherit position (default)"),
        (UpdateReentry::Tail, "tail (naive)"),
    ] {
        let sim = SimConfig {
            update_reentry: mode,
            ..SimConfig::default()
        };
        let r = run_policy_with(&qod_heavy, Policy::Qh, sim);
        t.row([
            name.to_string(),
            pct(r.total_pct()),
            format!("{:.3}", r.avg_staleness()),
            format!("{:.0}", r.staleness.max().unwrap_or(0.0)),
            format!("{:.0} ms", r.update_delay_ms.mean()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(tail re-entry keeps reborn updates at the back of the queue, so frequently          traded stocks accumulate unbounded #uu while cold stocks stay fresh)"
    );
    println!();

    // 5. Single-priority-queue exchange rates (Section 3.1's strawman).
    println!("5. one merged priority queue: the exchange-rate strawman");
    println!("   (queries ranked by VRD; every update worth `rate` on the same scale)");
    let mut t = TextTable::new(["policy", "QoS-heavy k=1", "balanced k=5", "QoD-heavy k=9"]);
    let mut spectrum_traces = Vec::new();
    for k in [1u8, 5, 9] {
        let mut tr = paper_trace(scale, 1);
        qcgen::assign_qcs(&mut tr, QcPreset::Spectrum { k }, QcShape::Step, 7);
        spectrum_traces.push(tr);
    }
    let mut row = |name: String, policy: Policy| {
        let cells: Vec<String> = spectrum_traces
            .iter()
            .map(|tr| pct(run_policy(tr, policy).total_pct()))
            .collect();
        t.row([name, cells[0].clone(), cells[1].clone(), cells[2].clone()]);
    };
    for rate in [0.0, 0.2, 0.5, 1.0, 5.0] {
        row(
            format!("Greedy rate={rate}"),
            Policy::Greedy {
                exchange_rate: rate,
            },
        );
    }
    row("QUTS".to_string(), Policy::quts_default());
    print!("{}", t.render());
    println!(
        "(no single exchange rate matches QUTS at every point: low rates mimic QH, \
         high rates mimic UH — the scales are incomparable, which is the paper's \
         argument for two-level scheduling)"
    );
    println!();

    // 6. Adaptive vs frozen rho (what the feedback loop is worth).
    println!("6. adaptive rho vs static allocations (Figure 9 workload)");
    let mut t = TextTable::new(["variant", "total profit %"]);
    for rho in [0.5, 0.6, 0.75, 0.9, 1.0] {
        let cfg = QutsConfig::default().with_fixed_rho(rho);
        let r = run_policy(&phases, Policy::Quts(cfg));
        t.row([format!("fixed rho={rho}"), pct(r.total_pct())]);
    }
    let r = run_policy(&phases, Policy::quts_default());
    t.row(["adaptive (paper)".to_string(), pct(r.total_pct())]);
    print!("{}", t.render());
    println!("(adaptation must match or beat every static allocation)");
    println!();

    // 7. Low-level query policy under QUTS.
    println!("7. low-level query policy (QUTS, balanced QCs)");
    let mut t = TextTable::new(["policy", "QoS%", "QoD%", "total%", "rt (ms)"]);
    for order in [
        QueryOrder::Vrd,
        QueryOrder::Edf,
        QueryOrder::Fifo,
        QueryOrder::ProfitDensity,
    ] {
        let cfg = QutsConfig::default().with_query_order(order);
        let r = run_policy(&balanced, Policy::Quts(cfg));
        t.row([
            order.label().to_string(),
            pct(r.qos_pct()),
            pct(r.qod_pct()),
            pct(r.total_pct()),
            format!("{:.1}", r.avg_response_time_ms()),
        ]);
    }
    print!("{}", t.render());
}
