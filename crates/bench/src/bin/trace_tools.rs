//! Trace utilities: generate a calibrated workload to a file, inspect
//! one, or replay one under a chosen policy.
//!
//! ```text
//! trace_tools generate --scale 30 --seed 7 --preset balanced --out trace.csv
//! trace_tools info --in trace.csv
//! trace_tools run --in trace.csv --policy quts
//! trace_tools export --in trace.csv --policy quts --out decisions.jsonl
//! ```
//!
//! `export` replays the workload with decision tracing at `Full` and
//! writes the scheduler's decision log as JSON Lines (one event per
//! line, stable key order — two same-seed exports are byte-identical).

use quts_bench::Policy;
use quts_metrics::TextTable;
use quts_sched::QutsConfig;
use quts_sim::{SimConfig, Simulator, TraceConfig};
use quts_workload::{qcgen, QcPreset, QcShape, StockWorkloadConfig, Trace, TraceStats};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    match command.as_str() {
        "generate" => {
            let scale: u32 = flag("--scale").and_then(|v| v.parse().ok()).unwrap_or(30);
            let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
            let out = flag("--out").unwrap_or_else(|| "trace.csv".into());
            let preset = parse_preset(&flag("--preset").unwrap_or_else(|| "balanced".into()));
            let shape = match flag("--shape").as_deref() {
                Some("linear") => QcShape::Linear,
                _ => QcShape::Step,
            };
            let mut cfg = StockWorkloadConfig::default().scaled(scale);
            cfg.seed = seed;
            let mut trace = cfg.generate();
            qcgen::assign_qcs(&mut trace, preset, shape, seed);
            let file = File::create(&out).unwrap_or_else(|e| fail(&format!("create {out}: {e}")));
            let mut w = BufWriter::new(file);
            trace
                .write_csv(&mut w)
                .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
            println!(
                "wrote {} queries + {} updates ({} stocks) to {out}",
                trace.queries.len(),
                trace.updates.len(),
                trace.num_stocks
            );
        }
        "info" => {
            let trace = load(&flag("--in").unwrap_or_else(|| usage()));
            let stats = TraceStats::compute(&trace);
            let mut t = TextTable::new(["property", "value"]);
            t.row(["queries".into(), stats.num_queries.to_string()]);
            t.row(["updates".into(), stats.num_updates.to_string()]);
            t.row(["stocks".into(), stats.num_stocks.to_string()]);
            t.row(["horizon".into(), format!("{:.1} s", stats.horizon_s)]);
            t.row(["offered load".into(), format!("{:.2}", stats.offered_load)]);
            t.row([
                "query cost".into(),
                format!(
                    "{:.1} ~ {:.1} ms",
                    stats.query_cost_ms.0, stats.query_cost_ms.1
                ),
            ]);
            t.row([
                "update cost".into(),
                format!(
                    "{:.1} ~ {:.1} ms",
                    stats.update_cost_ms.0, stats.update_cost_ms.1
                ),
            ]);
            t.row([
                "stocks below diagonal".into(),
                format!("{:.0}%", stats.below_diagonal_fraction() * 100.0),
            ]);
            print!("{}", t.render());
        }
        "run" => {
            let trace = load(&flag("--in").unwrap_or_else(|| usage()));
            let policy = parse_policy(&flag("--policy").unwrap_or_else(|| "quts".into()));
            let report = Simulator::new(
                SimConfig::with_stocks(trace.num_stocks),
                trace.queries,
                trace.updates,
                policy.build(),
            )
            .run();
            println!("{}", report.summary());
        }
        "export" => {
            let trace = load(&flag("--in").unwrap_or_else(|| usage()));
            let policy = parse_policy(&flag("--policy").unwrap_or_else(|| "quts".into()));
            let sim = SimConfig {
                trace: TraceConfig::full(),
                ..SimConfig::with_stocks(trace.num_stocks)
            };
            let report = Simulator::new(sim, trace.queries, trace.updates, policy.build()).run();
            let jsonl = report.trace_jsonl().expect("tracing was enabled");
            let records = jsonl.lines().count();
            match flag("--out") {
                Some(out) => {
                    std::fs::write(&out, &jsonl)
                        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
                    eprintln!(
                        "wrote {records} decision records to {out} ({} dropped by the ring)",
                        report.trace_dropped
                    );
                }
                None => print!("{jsonl}"),
            }
        }
        _ => usage(),
    }
}

fn load(path: &str) -> Trace {
    let file = File::open(path).unwrap_or_else(|e| fail(&format!("open {path}: {e}")));
    Trace::read_csv(&mut BufReader::new(file))
        .unwrap_or_else(|e| fail(&format!("parse {path}: {e}")))
}

fn parse_preset(name: &str) -> QcPreset {
    match name {
        "balanced" => QcPreset::Balanced,
        "phases" => QcPreset::Phases,
        other => {
            if let Some(k) = other
                .strip_prefix("spectrum-")
                .and_then(|k| k.parse::<u8>().ok())
            {
                if (1..=9).contains(&k) {
                    return QcPreset::Spectrum { k };
                }
            }
            fail(&format!(
                "unknown preset {other:?} (balanced | phases | spectrum-1..9)"
            ))
        }
    }
}

fn parse_policy(name: &str) -> Policy {
    match name {
        "fifo" => Policy::Fifo,
        "fifo-uh" => Policy::FifoUh,
        "fifo-qh" => Policy::FifoQh,
        "uh" => Policy::Uh,
        "qh" => Policy::Qh,
        "quts" => Policy::Quts(QutsConfig::default()),
        other => {
            if let Some(rate) = other
                .strip_prefix("greedy-")
                .and_then(|r| r.parse::<f64>().ok())
            {
                return Policy::Greedy {
                    exchange_rate: rate,
                };
            }
            fail(&format!(
                "unknown policy {other:?} (fifo | fifo-uh | fifo-qh | uh | qh | quts | greedy-<rate>)"
            ))
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tools generate [--scale N] [--seed S] [--preset balanced|phases|spectrum-K] \
         [--shape step|linear] [--out FILE]\n  trace_tools info --in FILE\n  trace_tools run --in FILE \
         [--policy fifo|uh|qh|quts|greedy-RATE]\n  trace_tools export --in FILE \
         [--policy fifo|uh|qh|quts|greedy-RATE] [--out FILE]"
    );
    exit(2);
}
