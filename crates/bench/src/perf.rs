//! Per-simulation performance accounting behind the experiment harness.
//!
//! [`crate::harness::run_policy_with`] records one [`SimRun`] — wall
//! clock, trace events, CPU dispatches — for every simulation it
//! executes, into a process-global registry that is safe to feed from
//! [`crate::parallel::run_many`] workers. `run_all` drains the registry
//! around each experiment and aggregates the records into the
//! `BENCH_quts.json` perf trajectory at the repo root.

use std::sync::Mutex;
use std::time::Duration;

/// One timed simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimRun {
    /// Wall-clock time of `Simulator::run`.
    pub wall: Duration,
    /// Trace events processed (query + update arrivals).
    pub events: u64,
    /// CPU dispatches performed by the engine.
    pub dispatches: u64,
}

static RECORDS: Mutex<Vec<SimRun>> = Mutex::new(Vec::new());

/// Records a finished simulation (called from any thread).
pub fn record(run: SimRun) {
    RECORDS.lock().expect("perf registry poisoned").push(run);
}

/// Removes and returns every record accumulated since the last drain.
pub fn drain() -> Vec<SimRun> {
    std::mem::take(&mut *RECORDS.lock().expect("perf registry poisoned"))
}

/// Aggregated performance of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentPerf {
    /// Experiment name (binary name).
    pub name: &'static str,
    /// End-to-end wall time of the experiment, including trace
    /// generation and rendering.
    pub wall: Duration,
    /// Number of simulations the experiment ran.
    pub sims: usize,
    /// Total trace events across those simulations.
    pub events: u64,
    /// Total CPU dispatches across those simulations.
    pub dispatches: u64,
    /// Summed per-simulation wall time (exceeds `wall` under parallelism).
    pub sim_wall: Duration,
}

impl ExperimentPerf {
    /// Aggregates the drained records of one experiment.
    pub fn new(name: &'static str, wall: Duration, sims: &[SimRun]) -> ExperimentPerf {
        ExperimentPerf {
            name,
            wall,
            sims: sims.len(),
            events: sims.iter().map(|s| s.events).sum(),
            dispatches: sims.iter().map(|s| s.dispatches).sum(),
            sim_wall: sims.iter().map(|s| s.wall).sum(),
        }
    }

    /// Trace events simulated per second of experiment wall time.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.events, self.wall)
    }

    /// CPU dispatches simulated per second of experiment wall time.
    pub fn dispatches_per_sec(&self) -> f64 {
        per_sec(self.dispatches, self.wall)
    }
}

/// `count / seconds`, zero when no time elapsed.
pub fn per_sec(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_empties_the_registry() {
        // The registry is shared across tests in this binary; all we can
        // assert is that our record shows up and a second drain without
        // records in between yields nothing of ours.
        record(SimRun {
            wall: Duration::from_millis(10),
            events: 100,
            dispatches: 50,
        });
        let drained = drain();
        assert!(drained
            .iter()
            .any(|r| r.events == 100 && r.dispatches == 50));
    }

    #[test]
    fn aggregation_sums_fields() {
        let runs = [
            SimRun {
                wall: Duration::from_millis(10),
                events: 100,
                dispatches: 60,
            },
            SimRun {
                wall: Duration::from_millis(30),
                events: 300,
                dispatches: 140,
            },
        ];
        let perf = ExperimentPerf::new("x", Duration::from_millis(20), &runs);
        assert_eq!(perf.sims, 2);
        assert_eq!(perf.events, 400);
        assert_eq!(perf.dispatches, 200);
        assert_eq!(perf.sim_wall, Duration::from_millis(40));
        assert!((perf.events_per_sec() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn per_sec_handles_zero_duration() {
        assert_eq!(per_sec(100, Duration::ZERO), 0.0);
    }
}
