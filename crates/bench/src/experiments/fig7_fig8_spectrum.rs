//! Figures 7 and 8 (with Table 4) — profit percentages across the
//! nine-point QC spectrum.
//!
//! Table 4 varies `QODmax%` from 0.1 to 0.9 (`qodmax ~ U[$10k, $10k+9]`,
//! `qosmax ~ U[$10(10−k), $10(10−k)+9]`). Figure 7 shows FIFO earning the
//! worst QoS everywhere; Figure 8 shows UH earning almost-maximal QoD but
//! poor QoS, QH the mirror image, and QUTS close to maximal on both at
//! every point — up to 101.3% better than UH and up to 40.1% better
//! than QH in total profit.

use crate::{harness, paper_trace, run_many, run_policy, Policy};
use quts_metrics::{table::pct, TextTable};
use quts_workload::{qcgen, QcPreset, QcShape};
use std::io::{self, Write};

/// Runs the 9-preset × 4-policy grid (in parallel with `jobs` workers)
/// and renders the spectrum tables.
pub fn run(scale: u32, jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Figures 7-8: profit across the QC spectrum (Table 4 setups)",
        scale,
    )?;

    let base = paper_trace(scale, 1);
    let policies = [
        ("FIFO (Fig 7)", Policy::Fifo),
        ("UH (Fig 8a)", Policy::Uh),
        ("QH (Fig 8b)", Policy::Qh),
        ("QUTS (Fig 8c)", Policy::quts_default()),
    ];

    let traces: Vec<_> = QcPreset::spectrum_points()
        .map(|preset| {
            let mut trace = base.clone();
            qcgen::assign_qcs(&mut trace, preset, QcShape::Step, 7);
            trace
        })
        .collect();

    // The full (preset, policy) grid in one parallel fan-out; input order
    // (preset-major) makes the result layout deterministic.
    let grid: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|t| (0..policies.len()).map(move |p| (t, p)))
        .collect();
    let reports = run_many(jobs, grid, |(t, p)| {
        let r = run_policy(&traces[t], policies[p].1);
        (
            r.qos_pct(),
            r.qod_pct(),
            r.total_pct(),
            r.aggregates.qos_max_pct(),
        )
    });

    // results[policy][k-1] = (qos_pct, qod_pct, total_pct, qosmax_pct)
    let mut results: Vec<Vec<(f64, f64, f64, f64)>> = vec![Vec::new(); policies.len()];
    for (i, cell) in reports.into_iter().enumerate() {
        results[i % policies.len()].push(cell);
    }

    for (i, (name, _)) in policies.iter().enumerate() {
        writeln!(out, "{name}")?;
        let mut t = TextTable::new(["QODmax%", "QOSmax%", "QoS%", "QoD%", "total%"]);
        for (k, &(qos, qod, total, qosmax)) in results[i].iter().enumerate() {
            t.row([
                format!("0.{}", k + 1),
                pct(qosmax),
                pct(qos),
                pct(qod),
                pct(total),
            ]);
        }
        write!(out, "{}", t.render())?;
        writeln!(out)?;
    }

    // The paper's headline factors.
    let improvement = |a: &[(f64, f64, f64, f64)], b: &[(f64, f64, f64, f64)]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.2 / y.2.max(1e-9) - 1.0)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let quts = &results[3];
    writeln!(
        out,
        "QUTS vs UH: up to {:.1}% better (paper: up to 101.3%)",
        improvement(quts, &results[1]) * 100.0
    )?;
    writeln!(
        out,
        "QUTS vs QH: up to {:.1}% better (paper: up to 40.1%)",
        improvement(quts, &results[2]) * 100.0
    )?;
    writeln!(
        out,
        "QUTS vs FIFO: up to {:.1}% better",
        improvement(quts, &results[0]) * 100.0
    )?;
    let never_worse = quts.iter().zip(&results[2]).all(|(q, h)| q.2 >= h.2 - 0.01)
        && quts.iter().zip(&results[1]).all(|(q, u)| q.2 >= u.2 - 0.01);
    writeln!(
        out,
        "shape check: QUTS better or equal to the best baseline at every point: {never_worse}"
    )
}
