//! Figure 1 — the response-time / staleness trade-off of the three naive
//! scheduling policies.
//!
//! The paper runs plain FIFO, FIFO-UH (updates preempt, FIFO queries) and
//! FIFO-QH (queries preempt, FIFO updates) over the stock trace and plots
//! average response time against average staleness (`#uu`), observing
//! three mutually dominating points:
//!
//! ```text
//! FIFO-UH  [11591 ms, 0.00]   zero staleness, unusable latency
//! FIFO     [  322 ms, 0.07]   in between
//! FIFO-QH  [   23 ms, 0.26]   lowest latency, worst staleness
//! ```

use crate::{harness, paper_trace, run_many, run_policy, Policy};
use quts_metrics::TextTable;
use quts_workload::{qcgen, QcPreset, QcShape};
use std::io::{self, Write};

/// Runs the three naive policies (in parallel with `jobs` workers) and
/// renders the trade-off table.
pub fn run(scale: u32, jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Figure 1: impact of naive scheduling on the RT/staleness trade-off",
        scale,
    )?;

    let mut trace = paper_trace(scale, 1);
    qcgen::assign_qcs(&mut trace, QcPreset::Balanced, QcShape::Step, 7);

    let paper: &[(&str, f64, f64)] = &[
        ("FIFO", 322.0, 0.07),
        ("FIFO-UH", 11591.0, 0.0),
        ("FIFO-QH", 23.0, 0.26),
    ];

    let grid = [
        (Policy::Fifo, "FIFO"),
        (Policy::FifoUh, "FIFO-UH"),
        (Policy::FifoQh, "FIFO-QH"),
    ];
    let reports = run_many(jobs, grid.to_vec(), |(policy, name)| {
        (name, run_policy(&trace, policy))
    });

    let mut table = TextTable::new([
        "policy",
        "rt (ms)",
        "#uu",
        "paper rt",
        "paper #uu",
        "committed",
        "expired",
    ]);
    let mut measured = Vec::new();
    for (name, r) in &reports {
        let (_, p_rt, p_uu) = paper.iter().find(|&&(n, ..)| n == *name).unwrap();
        table.row([
            name.to_string(),
            format!("{:.1}", r.avg_response_time_ms()),
            format!("{:.3}", r.avg_staleness()),
            format!("{p_rt:.0}"),
            format!("{p_uu:.2}"),
            r.committed.to_string(),
            r.expired.to_string(),
        ]);
        measured.push((*name, r.avg_response_time_ms(), r.avg_staleness()));
    }
    write!(out, "{}", table.render())?;

    // The shape that matters: RT ordering QH < FIFO < UH, staleness
    // ordering reversed, UH exactly fresh.
    let rt = |n: &str| measured.iter().find(|m| m.0 == n).unwrap().1;
    let uu = |n: &str| measured.iter().find(|m| m.0 == n).unwrap().2;
    writeln!(out)?;
    writeln!(
        out,
        "shape check: rt(FIFO-QH) < rt(FIFO) < rt(FIFO-UH): {}",
        rt("FIFO-QH") < rt("FIFO") && rt("FIFO") < rt("FIFO-UH")
    )?;
    writeln!(
        out,
        "shape check: uu(FIFO-UH) = 0 <= uu(FIFO) <= uu(FIFO-QH): {}",
        uu("FIFO-UH") == 0.0 && uu("FIFO") <= uu("FIFO-QH")
    )?;
    writeln!(
        out,
        "shape check: all three points mutually dominating (no policy wins both axes): {}",
        rt("FIFO-QH") < rt("FIFO") && uu("FIFO-QH") > uu("FIFO")
    )
}
