//! Figure 6 — profit percentage of the four scheduling algorithms under
//! step and linear Quality Contracts.
//!
//! Setup: `qosmax, qodmax ~ U[$10, $50]` (so `QOSmax% = QODmax% = 0.5`),
//! `rtmax ~ U[50, 100] ms`, `uumax = 1`. The paper's reading: QUTS earns
//! the highest total, close to maximal on both dimensions — taking the
//! "best" dimension of each baseline (QoS from QH, QoD from UH); QH is
//! low on QoD, UH low on QoS, FIFO worst overall with the worst QoS.

use crate::{harness, paper_trace, run_many, run_policy, Policy};
use quts_metrics::{table::pct, TextTable};
use quts_workload::{qcgen, QcPreset, QcShape};
use std::io::{self, Write};

/// Runs the 2-shape × 4-policy grid (in parallel with `jobs` workers) and
/// renders both Figure 6 panels.
pub fn run(scale: u32, jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Figure 6: step vs linear QCs, profit percentage per policy",
        scale,
    )?;

    let base = paper_trace(scale, 1);

    let shapes = [
        (QcShape::Step, "(a) step QCs"),
        (QcShape::Linear, "(b) linear QCs"),
    ];
    let traces: Vec<_> = shapes
        .iter()
        .map(|&(shape, _)| {
            let mut trace = base.clone();
            qcgen::assign_qcs(&mut trace, QcPreset::Balanced, shape, 7);
            trace
        })
        .collect();

    // One grid over (shape, policy); results come back in input order.
    let grid: Vec<(usize, Policy)> = (0..shapes.len())
        .flat_map(|s| Policy::comparison_set().into_iter().map(move |p| (s, p)))
        .collect();
    let reports = run_many(jobs, grid, |(s, policy)| run_policy(&traces[s], policy));
    let per_shape = Policy::comparison_set().len();

    for (s, (_, label)) in shapes.iter().enumerate() {
        writeln!(out, "{label}")?;
        let mut t = TextTable::new(["policy", "QoS%", "QoD%", "total%", "rt (ms)", "#uu"]);
        let mut totals = Vec::new();
        for r in &reports[s * per_shape..(s + 1) * per_shape] {
            t.row([
                r.scheduler.to_string(),
                pct(r.qos_pct()),
                pct(r.qod_pct()),
                pct(r.total_pct()),
                format!("{:.1}", r.avg_response_time_ms()),
                format!("{:.3}", r.avg_staleness()),
            ]);
            totals.push((r.scheduler, r.total_pct(), r.qos_pct(), r.qod_pct()));
        }
        write!(out, "{}", t.render())?;

        let get = |n: &str| totals.iter().find(|x| x.0 == n).unwrap();
        let quts = get("QUTS");
        writeln!(out)?;
        writeln!(
            out,
            "shape check: QUTS within 1pp of the best policy on total profit: {}",
            totals.iter().all(|x| quts.1 >= x.1 - 0.01)
        )?;
        writeln!(
            out,
            "shape check: FIFO and UH are the bottom two on total profit: {}",
            get("FIFO").1 < quts.1 - 0.05
                && get("FIFO").1 < get("QH").1 - 0.05
                && get("UH").1 < quts.1 - 0.05
        )?;
        writeln!(
            out,
            "shape check: the fixed-priority extremes each sacrifice a dimension: \
             UH QoS {} vs QH QoS {}; QH #uu > UH #uu = 0",
            pct(get("UH").2),
            pct(get("QH").2)
        )?;
        writeln!(out)?;
    }
    Ok(())
}
