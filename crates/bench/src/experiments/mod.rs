//! The paper's experiments as library functions.
//!
//! Each experiment takes the trace `scale`, a parallel `jobs` count for
//! its independent simulation grid, and the sink it renders into. The
//! thin binaries under `src/bin/` wire these to the command line;
//! `run_all` runs the whole suite in-process, timing each entry for the
//! `BENCH_quts.json` perf trajectory.
//!
//! Parallelism never changes output: grids run through
//! [`crate::parallel::run_many`], which returns results in input order,
//! and all rendering happens afterwards on the calling thread.

pub mod ablations;
pub mod fig10_sensitivity;
pub mod fig1_tradeoff;
pub mod fig5_trace;
pub mod fig6_step_linear;
pub mod fig7_fig8_spectrum;
pub mod fig9_adaptability;
pub mod table3_workload;

use std::io::{self, Write};

/// The uniform experiment entry point: `(scale, jobs, sink)`.
pub type ExperimentFn = fn(u32, usize, &mut dyn Write) -> io::Result<()>;

/// Every experiment `run_all` executes, in paper order.
pub const ALL: [(&str, ExperimentFn); 8] = [
    ("table3_workload", table3_workload::run),
    ("fig5_trace", fig5_trace::run),
    ("fig1_tradeoff", fig1_tradeoff::run),
    ("fig6_step_linear", fig6_step_linear::run),
    ("fig7_fig8_spectrum", fig7_fig8_spectrum::run),
    ("fig9_adaptability", fig9_adaptability::run),
    ("fig10_sensitivity", fig10_sensitivity::run),
    ("ablations", ablations::run),
];
