//! Figure 10 — sensitivity of QUTS to its two parameters.
//!
//! (a) the adaptation period ω swept from 0.1 s to 100 s barely moves
//! total profit; (b) the atom time τ swept from 1 ms to 1000 ms peaks
//! around 10 ms — just above the maximum query execution time — and
//! degrades at both extremes (contention at 1 ms; coarse allocation at
//! 1000 ms). Setup as in Figure 9 (phase-flipping QCs).

use crate::{harness, paper_trace, run_many, run_policy, Policy};
use quts_metrics::{table::pct, TextTable};
use quts_sched::QutsConfig;
use quts_sim::SimDuration;
use quts_workload::{qcgen, QcPreset, QcShape};
use std::io::{self, Write};

/// Runs both parameter sweeps (in parallel with `jobs` workers) and
/// renders the sensitivity tables.
pub fn run(scale: u32, jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Figure 10: sensitivity of QUTS to omega and tau",
        scale,
    )?;

    let mut trace = paper_trace(scale, 1);
    qcgen::assign_qcs(&mut trace, QcPreset::Phases, QcShape::Step, 7);

    // Both sweeps as one parallel grid; results come back in input order.
    let omegas = [100u64, 500, 1_000, 5_000, 10_000, 50_000, 100_000];
    let taus = [1u64, 5, 10, 50, 100, 500, 1_000];
    let configs: Vec<QutsConfig> = omegas
        .iter()
        .map(|&ms| QutsConfig::default().with_omega(SimDuration::from_ms(ms)))
        .chain(
            taus.iter()
                .map(|&ms| QutsConfig::default().with_tau(SimDuration::from_ms(ms))),
        )
        .collect();
    let profits = run_many(jobs, configs, |cfg| {
        run_policy(&trace, Policy::Quts(cfg)).total_pct()
    });
    let (omega_profits, tau_profits) = profits.split_at(omegas.len());

    // (a) adaptation period sweep, tau fixed at the 10 ms default.
    writeln!(out, "(a) adaptation period omega (tau = 10 ms)")?;
    let mut t = TextTable::new(["omega", "total profit %"]);
    for (&omega_ms, &profit) in omegas.iter().zip(omega_profits) {
        t.row([format!("{:.1} s", omega_ms as f64 / 1000.0), pct(profit)]);
    }
    write!(out, "{}", t.render())?;
    let spread = omega_profits
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - omega_profits.iter().cloned().fold(f64::INFINITY, f64::min);
    writeln!(out)?;
    writeln!(
        out,
        "shape check: profit varies little across three orders of magnitude of omega: \
         spread {:.1} pp (paper: 'very little')",
        spread * 100.0
    )?;

    // (b) atom time sweep, omega fixed at the 1000 ms default.
    writeln!(out)?;
    writeln!(out, "(b) atom time tau (omega = 1000 ms)")?;
    let mut t = TextTable::new(["tau", "total profit %"]);
    for (&tau_ms, &profit) in taus.iter().zip(tau_profits) {
        t.row([format!("{tau_ms} ms"), pct(profit)]);
    }
    write!(out, "{}", t.render())?;
    let best = tau_profits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| taus[i])
        .unwrap();
    writeln!(out)?;
    writeln!(
        out,
        "best tau: {best} ms (paper: ~10 ms, 'above the maximum execution time of most queries')"
    )?;
    writeln!(
        out,
        "shape check: tau = 1000 ms is not better than the 5-50 ms band: {}",
        tau_profits[6] <= tau_profits[1].max(tau_profits[2]).max(tau_profits[3]) + 1e-9
    )
}
