//! Ablations over the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they quantify the assumptions the
//! reproduction had to make and the knobs the paper leaves open:
//!
//! 1. the aging factor α ("the exact α does not matter much"),
//! 2. the staleness aggregation for multi-item queries (Max/Sum/Mean),
//! 3. QoS-Dependent vs QoS-Independent contract composition,
//! 4. the update register table's queue-position inheritance (vs naive
//!    tail re-entry, which starves hot items),
//! 5. the low-level query policy under QUTS (VRD/EDF/FIFO/profit-density).

use crate::{harness, paper_trace, run_many, run_policy, run_policy_with, Policy};
use quts_metrics::{table::pct, TextTable};
use quts_qc::{Composition, StalenessAggregation};
use quts_sched::{QueryOrder, QutsConfig};
use quts_sim::{engine::UpdateReentry, SimConfig};
use quts_workload::{qcgen, QcPreset, QcShape};
use std::io::{self, Write};

/// Runs every ablation section (each section's grid in parallel with
/// `jobs` workers) and renders the tables.
pub fn run(scale: u32, jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Ablations over the reproduction's design choices",
        scale,
    )?;

    let base = paper_trace(scale, 1);
    let mut balanced = base.clone();
    qcgen::assign_qcs(&mut balanced, QcPreset::Balanced, QcShape::Step, 7);
    let mut qod_heavy = base.clone();
    qcgen::assign_qcs(
        &mut qod_heavy,
        QcPreset::Spectrum { k: 9 },
        QcShape::Step,
        7,
    );
    let mut phases = base;
    qcgen::assign_qcs(&mut phases, QcPreset::Phases, QcShape::Step, 7);

    // 1. Aging factor α (phase workload: adaptation speed matters most).
    writeln!(out, "1. aging factor alpha (QUTS, Figure 9 workload)")?;
    let mut t = TextTable::new(["alpha", "total profit %"]);
    let alphas = [0.05, 0.1, 0.2, 0.5, 1.0];
    let profits = run_many(jobs, alphas.to_vec(), |alpha| {
        run_policy(
            &phases,
            Policy::Quts(QutsConfig::default().with_alpha(alpha)),
        )
        .total_pct()
    });
    for (alpha, profit) in alphas.iter().zip(profits) {
        t.row([format!("{alpha}"), pct(profit)]);
    }
    write!(out, "{}", t.render())?;
    writeln!(out)?;

    // 2. Staleness aggregation for multi-item queries.
    writeln!(out, "2. staleness aggregation (QUTS, balanced QCs)")?;
    let mut t = TextTable::new(["aggregation", "total profit %", "#uu"]);
    let aggs = [
        (StalenessAggregation::Max, "max"),
        (StalenessAggregation::Sum, "sum"),
        (StalenessAggregation::Mean, "mean"),
    ];
    let rows = run_many(jobs, aggs.to_vec(), |(agg, name)| {
        let sim = SimConfig {
            staleness_agg: agg,
            ..SimConfig::default()
        };
        let r = run_policy_with(&balanced, Policy::quts_default(), sim);
        (name, r.total_pct(), r.avg_staleness())
    });
    for (name, total, uu) in rows {
        t.row([name.to_string(), pct(total), format!("{uu:.3}")]);
    }
    write!(out, "{}", t.render())?;
    writeln!(out)?;

    // 3. Composition mode.
    writeln!(out, "3. contract composition (QUTS, balanced QCs)")?;
    let mut t = TextTable::new(["composition", "QoS%", "QoD%", "total%"]);
    let comps = [
        (Composition::QoSIndependent, "QoS-independent (paper)"),
        (Composition::QoSDependent, "QoS-dependent"),
    ];
    let rows = run_many(jobs, comps.to_vec(), |(comp, name)| {
        let mut trace = balanced.clone();
        for q in &mut trace.queries {
            q.qc.composition = comp;
        }
        let r = run_policy(&trace, Policy::quts_default());
        (name, r.qos_pct(), r.qod_pct(), r.total_pct())
    });
    for (name, qos, qod, total) in rows {
        t.row([name.to_string(), pct(qos), pct(qod), pct(total)]);
    }
    write!(out, "{}", t.render())?;
    writeln!(out)?;

    // 4. Register-table queue-position inheritance.
    writeln!(out, "4. update re-entry semantics (QH, QoD-heavy QCs)")?;
    let mut t = TextTable::new([
        "re-entry",
        "total%",
        "mean #uu",
        "worst #uu",
        "mean apply delay",
    ]);
    let modes = [
        (UpdateReentry::InheritPosition, "inherit position (default)"),
        (UpdateReentry::Tail, "tail (naive)"),
    ];
    let rows = run_many(jobs, modes.to_vec(), |(mode, name)| {
        let sim = SimConfig {
            update_reentry: mode,
            ..SimConfig::default()
        };
        let r = run_policy_with(&qod_heavy, Policy::Qh, sim);
        (
            name,
            r.total_pct(),
            r.avg_staleness(),
            r.staleness.max().unwrap_or(0.0),
            r.update_delay_ms.mean(),
        )
    });
    for (name, total, uu, worst, delay) in rows {
        t.row([
            name.to_string(),
            pct(total),
            format!("{uu:.3}"),
            format!("{worst:.0}"),
            format!("{delay:.0} ms"),
        ]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(tail re-entry keeps reborn updates at the back of the queue, so frequently          traded stocks accumulate unbounded #uu while cold stocks stay fresh)"
    )?;
    writeln!(out)?;

    // 5. Single-priority-queue exchange rates (Section 3.1's strawman).
    writeln!(
        out,
        "5. one merged priority queue: the exchange-rate strawman"
    )?;
    writeln!(
        out,
        "   (queries ranked by VRD; every update worth `rate` on the same scale)"
    )?;
    let mut t = TextTable::new(["policy", "QoS-heavy k=1", "balanced k=5", "QoD-heavy k=9"]);
    let mut spectrum_traces = Vec::new();
    for k in [1u8, 5, 9] {
        let mut tr = paper_trace(scale, 1);
        qcgen::assign_qcs(&mut tr, QcPreset::Spectrum { k }, QcShape::Step, 7);
        spectrum_traces.push(tr);
    }
    let strawmen: Vec<(String, Policy)> = [0.0, 0.2, 0.5, 1.0, 5.0]
        .into_iter()
        .map(|rate| {
            (
                format!("Greedy rate={rate}"),
                Policy::Greedy {
                    exchange_rate: rate,
                },
            )
        })
        .chain([("QUTS".to_string(), Policy::quts_default())])
        .collect();
    // Policy-major grid: one row of three spectrum cells per policy.
    let grid: Vec<(usize, Policy)> = strawmen
        .iter()
        .flat_map(|&(_, policy)| (0..spectrum_traces.len()).map(move |i| (i, policy)))
        .collect();
    let cells = run_many(jobs, grid, |(i, policy)| {
        pct(run_policy(&spectrum_traces[i], policy).total_pct())
    });
    for (row, (name, _)) in strawmen.iter().enumerate() {
        let c = &cells[row * spectrum_traces.len()..(row + 1) * spectrum_traces.len()];
        t.row([name.clone(), c[0].clone(), c[1].clone(), c[2].clone()]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(no single exchange rate matches QUTS at every point: low rates mimic QH, \
         high rates mimic UH — the scales are incomparable, which is the paper's \
         argument for two-level scheduling)"
    )?;
    writeln!(out)?;

    // 6. Adaptive vs frozen rho (what the feedback loop is worth).
    writeln!(
        out,
        "6. adaptive rho vs static allocations (Figure 9 workload)"
    )?;
    let mut t = TextTable::new(["variant", "total profit %"]);
    let variants: Vec<(String, QutsConfig)> = [0.5, 0.6, 0.75, 0.9, 1.0]
        .into_iter()
        .map(|rho| {
            (
                format!("fixed rho={rho}"),
                QutsConfig::default().with_fixed_rho(rho),
            )
        })
        .chain([("adaptive (paper)".to_string(), QutsConfig::default())])
        .collect();
    let profits = run_many(jobs, variants.clone(), |(_, cfg)| {
        run_policy(&phases, Policy::Quts(cfg)).total_pct()
    });
    for ((name, _), profit) in variants.iter().zip(profits) {
        t.row([name.clone(), pct(profit)]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(adaptation must match or beat every static allocation)"
    )?;
    writeln!(out)?;

    // 7. Low-level query policy under QUTS.
    writeln!(out, "7. low-level query policy (QUTS, balanced QCs)")?;
    let mut t = TextTable::new(["policy", "QoS%", "QoD%", "total%", "rt (ms)"]);
    let orders = [
        QueryOrder::Vrd,
        QueryOrder::Edf,
        QueryOrder::Fifo,
        QueryOrder::ProfitDensity,
    ];
    let rows = run_many(jobs, orders.to_vec(), |order| {
        let cfg = QutsConfig::default().with_query_order(order);
        let r = run_policy(&balanced, Policy::Quts(cfg));
        (
            order.label(),
            r.qos_pct(),
            r.qod_pct(),
            r.total_pct(),
            r.avg_response_time_ms(),
        )
    });
    for (label, qos, qod, total, rt) in rows {
        t.row([
            label.to_string(),
            pct(qos),
            pct(qod),
            pct(total),
            format!("{rt:.1}"),
        ]);
    }
    write!(out, "{}", t.render())?;
    Ok(())
}
