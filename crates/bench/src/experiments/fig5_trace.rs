//! Figure 5 — trace characteristics.
//!
//! (a) the query rate shows only small changes over time; (b) the update
//! rate trends downward through the half hour; (c) per-stock query and
//! update frequencies are both heavily skewed, and most stocks lie below
//! the diagonal (more updates than queries).

use crate::harness;
use quts_metrics::TextTable;
use quts_workload::{StockWorkloadConfig, TraceStats};
use std::io::{self, Write};

/// Renders Figure 5 at `scale` (no simulations, `_jobs` unused).
pub fn run(scale: u32, _jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(out, "Figure 5: trace characteristics", scale)?;

    let trace = StockWorkloadConfig::default().scaled(scale).generate();
    let stats = TraceStats::compute(&trace);

    // (a) + (b): arrival rates per sixth of the trace.
    let sixth = |series: &[u64], i: usize| -> f64 {
        let n = series.len().max(1);
        let lo = i * n / 6;
        let hi = ((i + 1) * n / 6).max(lo + 1).min(n);
        series[lo..hi].iter().sum::<u64>() as f64 / (hi - lo) as f64
    };
    let mut t = TextTable::new(["trace sixth", "queries/s (Fig 5a)", "updates/s (Fig 5b)"]);
    for i in 0..6 {
        t.row([
            format!("{}/6", i + 1),
            format!("{:.1}", sixth(&stats.queries_per_second, i)),
            format!("{:.1}", sixth(&stats.updates_per_second, i)),
        ]);
    }
    write!(out, "{}", t.render())?;
    let first_u = sixth(&stats.updates_per_second, 0);
    let last_u = sixth(&stats.updates_per_second, 5);
    writeln!(out)?;
    writeln!(
        out,
        "shape check (5b): update rate declines over the trace: {} ({:.0}/s -> {:.0}/s)",
        first_u > last_u,
        first_u,
        last_u
    )?;

    // (c): the query-vs-update scatter, summarised.
    writeln!(out)?;
    writeln!(out, "Figure 5c: per-stock query accesses vs update counts")?;
    let mut by_updates: Vec<&(u64, u64)> = stats.per_stock.iter().collect();
    by_updates.sort_by_key(|&&(_, u)| std::cmp::Reverse(u));
    let mut c = TextTable::new([
        "percentile of stocks (by updates)",
        "updates",
        "query accesses",
    ]);
    for (label, idx) in [
        ("top 0.1%", stats.per_stock.len() / 1000),
        ("top 1%", stats.per_stock.len() / 100),
        ("top 10%", stats.per_stock.len() / 10),
        ("median", stats.per_stock.len() / 2),
    ] {
        let &&(q, u) = &by_updates[idx.min(by_updates.len() - 1)];
        c.row([label.to_string(), u.to_string(), q.to_string()]);
    }
    write!(out, "{}", c.render())?;
    writeln!(out)?;
    writeln!(
        out,
        "fraction of active stocks below the diagonal (updates > queries): {:.2} \
         (paper: 'most stocks')",
        stats.below_diagonal_fraction()
    )?;
    let updates_total: u64 = stats.per_stock.iter().map(|&(_, u)| u).sum();
    let queries_total: u64 = stats.per_stock.iter().map(|&(q, _)| q).sum();
    writeln!(
        out,
        "updates per query access overall: {:.2} (paper: ~6.0)",
        updates_total as f64 / queries_total.max(1) as f64
    )
}
