//! Table 3 — workload information and system parameters.
//!
//! ```text
//! query execution time  5~9 ms      # queries  82129
//! update execution time 1~5 ms      # updates  496892
//! default atom time     10 ms       # stocks   4608
//! default adaptation    1000 ms
//! ```

use crate::harness;
use quts_metrics::TextTable;
use quts_sched::QutsConfig;
use quts_workload::{StockWorkloadConfig, TraceStats};
use std::io::{self, Write};

/// Renders Table 3 at `scale` (no simulations, `_jobs` unused).
pub fn run(scale: u32, _jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Table 3: workload information and system parameters",
        scale,
    )?;

    let cfg = StockWorkloadConfig::default().scaled(scale);
    let trace = cfg.generate();
    let stats = TraceStats::compute(&trace);
    let quts = QutsConfig::default();

    let paper_q = 82_129 / scale as usize;
    let paper_u = 496_892 / scale as usize;

    let mut t = TextTable::new(["parameter", "measured", "paper (scaled)"]);
    t.row([
        "query execution time".into(),
        format!(
            "{:.1} ~ {:.1} ms",
            stats.query_cost_ms.0, stats.query_cost_ms.1
        ),
        "5 ~ 9 ms".to_string(),
    ]);
    t.row([
        "update execution time".into(),
        format!(
            "{:.1} ~ {:.1} ms",
            stats.update_cost_ms.0, stats.update_cost_ms.1
        ),
        "1 ~ 5 ms".to_string(),
    ]);
    t.row([
        "# queries".into(),
        stats.num_queries.to_string(),
        paper_q.to_string(),
    ]);
    t.row([
        "# updates".into(),
        stats.num_updates.to_string(),
        paper_u.to_string(),
    ]);
    t.row([
        "# stocks".into(),
        stats.num_stocks.to_string(),
        "4608".to_string(),
    ]);
    t.row([
        "trace length".into(),
        format!("{:.0} s", stats.horizon_s),
        format!("{:.0} s", 1800.0 / scale as f64),
    ]);
    t.row([
        "default atom time (tau)".into(),
        format!("{:.0} ms", quts.tau.as_ms_f64()),
        "10 ms".to_string(),
    ]);
    t.row([
        "default adaptation period (omega)".into(),
        format!("{:.0} ms", quts.omega.as_ms_f64()),
        "1000 ms".to_string(),
    ]);
    t.row([
        "offered CPU load".into(),
        format!("{:.2}", stats.offered_load),
        "~1.15 (derived)".to_string(),
    ]);
    write!(out, "{}", t.render())?;

    writeln!(out)?;
    writeln!(
        out,
        "mean rates: {:.1} queries/s, {:.1} updates/s (paper: ~45.6, ~276.1)",
        stats.mean_query_rate(),
        stats.mean_update_rate()
    )
}
