//! Figure 9 — adaptability to changing user preferences.
//!
//! The run is split into four equal intervals whose `qosmax:qodmax` ratio
//! flips between 1:5 and 5:1. The paper plots (a) total gained profit
//! against the submitted maximum, (b)/(c) the same per dimension, and
//! (d) ρ per adaptation period — which must track the QoS share,
//! low-high-low-high, ranging from about 0.6 to about 1, after a
//! 5-second moving-window smoothing of the profit series.

use crate::{harness, paper_trace, run_many, run_policy, Policy};
use quts_metrics::{timeseries::moving_average, TextTable};
use quts_workload::{qcgen, QcPreset, QcShape};
use std::io::{self, Write};

/// Runs the adaptability experiment and renders the ρ-tracking tables.
pub fn run(scale: u32, jobs: usize, out: &mut dyn Write) -> io::Result<()> {
    harness::banner_to(
        out,
        "Figure 9: adaptability under phase-flipping QCs",
        scale,
    )?;

    let mut trace = paper_trace(scale, 1);
    qcgen::assign_qcs(&mut trace, QcPreset::Phases, QcShape::Step, 7);
    let horizon_s = trace.horizon().as_secs_f64();

    // A single simulation; routed through the pool for uniformity.
    let r = run_many(jobs, vec![()], |()| {
        run_policy(&trace, Policy::quts_default())
    })
    .pop()
    .expect("one report");

    // 5-second moving window, as in the paper's plots.
    let window = 5;
    let q_max = moving_average(&r.profit.q_max_bins(), window);
    let q_gain = moving_average(&r.profit.q_gained_bins(), window);
    let qos_max = moving_average(r.profit.qos_max().sums(), window);
    let qos_gain = moving_average(r.profit.qos_gained().sums(), window);
    let qod_max = moving_average(r.profit.qod_max().sums(), window);
    let qod_gain = moving_average(r.profit.qod_gained().sums(), window);

    // Sample ~16 rows across the run.
    let n = q_max.len();
    let step = (n / 16).max(1);
    let mut t = TextTable::new([
        "t (s)", "phase", "Qmax/s", "Q/s", "QOSmax/s", "QOS/s", "QODmax/s", "QOD/s", "rho",
    ]);
    let rho_at = |sec: f64| -> f64 {
        r.rho_history
            .iter()
            .take_while(|(time, _)| time.as_secs_f64() <= sec)
            .last()
            .map(|&(_, rho)| rho)
            .unwrap_or(f64::NAN)
    };
    for i in (0..n).step_by(step) {
        let sec = i as f64;
        let phase = ((sec / horizon_s * 4.0) as usize).min(3);
        let ratio = if phase.is_multiple_of(2) {
            "1:5"
        } else {
            "5:1"
        };
        t.row([
            format!("{sec:.0}"),
            format!("{} ({ratio})", phase + 1),
            format!("{:.0}", q_max[i]),
            format!("{:.0}", q_gain[i]),
            format!("{:.0}", qos_max[i]),
            format!("{:.0}", qos_gain[i]),
            format!("{:.0}", qod_max[i]),
            format!("{:.0}", qod_gain[i]),
            format!("{:.3}", rho_at(sec)),
        ]);
    }
    write!(out, "{}", t.render())?;

    // Shape checks.
    writeln!(out)?;
    writeln!(
        out,
        "overall gained/max profit: {:.1}%",
        r.total_pct() * 100.0
    )?;
    let phase_mean_rho = |phase: usize| -> f64 {
        let lo = horizon_s * phase as f64 / 4.0;
        let hi = horizon_s * (phase + 1) as f64 / 4.0;
        let xs: Vec<f64> = r
            .rho_history
            .iter()
            .filter(|(time, _)| {
                let s = time.as_secs_f64();
                // Skip the first half of each phase: convergence time.
                s >= (lo + hi) / 2.0 && s < hi
            })
            .map(|&(_, rho)| rho)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let rhos: Vec<f64> = (0..4).map(phase_mean_rho).collect();
    writeln!(
        out,
        "rho per phase (settled half): {:.3} {:.3} {:.3} {:.3}",
        rhos[0], rhos[1], rhos[2], rhos[3]
    )?;
    writeln!(
        out,
        "shape check: rho tracks the QoS share low-high-low-high: {}",
        rhos[0] < rhos[1] && rhos[1] > rhos[2] && rhos[2] < rhos[3]
    )?;
    let in_band = r
        .rho_history
        .iter()
        .all(|&(_, rho)| (0.5..=1.0).contains(&rho));
    writeln!(out, "shape check: rho stays in [0.5, 1]: {in_band}")?;
    writeln!(
        out,
        "shape check: QoD-heavy phases settle near rho = 0.6, QoS-heavy near 1 (paper Fig 9d): \
         {:.2}/{:.2} vs {:.2}/{:.2}",
        rhos[0], rhos[2], rhos[1], rhos[3]
    )
}
