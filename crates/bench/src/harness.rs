//! Experiment plumbing: build a calibrated trace, run it under a policy,
//! collect the report.

use quts_sched::{DualQueue, GlobalFifo, GlobalGreedy, Quts, QutsConfig};
use quts_sim::{RunReport, Scheduler, SimConfig, Simulator};
use quts_workload::{StockWorkloadConfig, Trace};

/// The scheduling policies the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Single-queue non-preemptive FIFO.
    Fifo,
    /// Naive dual queue, updates high, FIFO queries (Figure 1).
    FifoUh,
    /// Naive dual queue, queries high, FIFO queries (Figure 1).
    FifoQh,
    /// Update-High with VRD queries (Section 3.2).
    Uh,
    /// Query-High with VRD queries (Section 3.2).
    Qh,
    /// The paper's QUTS with the given configuration.
    Quts(QutsConfig),
    /// Single-priority-queue strawman with a fixed query/update exchange
    /// rate (Section 3.1's impossibility argument).
    Greedy {
        /// Update priority on the query-VRD scale.
        exchange_rate: f64,
    },
}

impl Policy {
    /// QUTS with paper-default parameters.
    pub fn quts_default() -> Policy {
        Policy::Quts(QutsConfig::default())
    }

    /// The four policies of the main comparison (Figures 6–8).
    pub fn comparison_set() -> [Policy; 4] {
        [Policy::Fifo, Policy::Uh, Policy::Qh, Policy::quts_default()]
    }

    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            Policy::Fifo => Box::new(GlobalFifo::new()),
            Policy::FifoUh => Box::new(DualQueue::fifo_uh()),
            Policy::FifoQh => Box::new(DualQueue::fifo_qh()),
            Policy::Uh => Box::new(DualQueue::uh()),
            Policy::Qh => Box::new(DualQueue::qh()),
            Policy::Quts(cfg) => Box::new(Quts::new(*cfg)),
            Policy::Greedy { exchange_rate } => Box::new(GlobalGreedy::new(*exchange_rate)),
        }
    }
}

/// The calibrated paper workload shrunk by `scale` (1 = the full
/// 30-minute trace; 30 = a one-minute equivalent with identical rates).
pub fn paper_trace(scale: u32, seed: u64) -> Trace {
    StockWorkloadConfig {
        seed,
        ..StockWorkloadConfig::default().scaled(scale)
    }
    .generate()
}

/// Runs `trace` under `policy` with default simulator settings.
pub fn run_policy(trace: &Trace, policy: Policy) -> RunReport {
    run_policy_with(trace, policy, SimConfig::default())
}

/// Runs `trace` under `policy` with explicit simulator settings
/// (`num_stocks` is filled in from the trace).
///
/// Every run is timed and recorded in the [`crate::perf`] registry, which
/// `run_all` aggregates into `BENCH_quts.json`.
pub fn run_policy_with(trace: &Trace, policy: Policy, mut sim: SimConfig) -> RunReport {
    sim.num_stocks = trace.num_stocks;
    let tracing = crate::tracectx::apply(&mut sim);
    let events = (trace.queries.len() + trace.updates.len()) as u64;
    let started = std::time::Instant::now();
    let report = Simulator::new(
        sim,
        trace.queries.clone(),
        trace.updates.clone(),
        policy.build(),
    )
    .run();
    crate::perf::record(crate::perf::SimRun {
        wall: started.elapsed(),
        events,
        dispatches: report.dispatches,
    });
    if tracing {
        crate::tracectx::write(&report);
    }
    report
}

/// The trace scale experiments run at: `--scale N` on the command line or
/// the `QUTS_SCALE` environment variable; 1 (the paper's full 30-minute
/// workload) by default. `N` divides the trace length and transaction
/// counts while keeping rates — and therefore every scheduling effect —
/// intact.
pub fn experiment_scale() -> u32 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            return v;
        }
    }
    std::env::var("QUTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Standard experiment banner: what is being reproduced and at what scale.
pub fn banner(experiment: &str, scale: u32) {
    let mut out = std::io::stdout();
    banner_to(&mut out, experiment, scale).expect("write banner to stdout");
}

/// [`banner`] into an arbitrary sink (experiments write to a caller-chosen
/// `Write` so `run_all` can run them in-process).
pub fn banner_to(
    out: &mut dyn std::io::Write,
    experiment: &str,
    scale: u32,
) -> std::io::Result<()> {
    writeln!(out, "== {experiment} ==")?;
    if scale == 1 {
        writeln!(
            out,
            "workload: full paper scale (30 min, 82,129 queries, 496,892 updates)"
        )?;
    } else {
        writeln!(
            out,
            "workload: paper trace scaled down by {scale}x (rates preserved)"
        )?;
    }
    writeln!(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_one() {
        // No --scale argument and (in the test harness) no QUTS_SCALE.
        if std::env::var("QUTS_SCALE").is_err() {
            assert_eq!(experiment_scale(), 1);
        }
    }

    #[test]
    fn policies_run_on_a_tiny_trace() {
        let trace = paper_trace(600, 1); // ~3 s, ~136 queries
        for policy in [
            Policy::Fifo,
            Policy::FifoUh,
            Policy::FifoQh,
            Policy::Uh,
            Policy::Qh,
            Policy::quts_default(),
        ] {
            let r = run_policy(&trace, policy);
            assert_eq!(
                r.committed + r.expired,
                trace.queries.len() as u64,
                "{policy:?} lost queries"
            );
            assert!(r.total_pct() <= 1.0 + 1e-9);
        }
    }
}
