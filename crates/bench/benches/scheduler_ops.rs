//! Microbenchmarks of per-transaction scheduler operations.
//!
//! The admit → pop cycle is executed once per transaction (579k times per
//! paper trace); QUTS additionally refreshes its atom/adaptation state on
//! every call.

use criterion::{criterion_group, criterion_main, Criterion};
use quts_db::StockId;
use quts_sched::{DualQueue, GlobalFifo, Quts};
use quts_sim::{QueryId, QueryInfo, Scheduler, SimDuration, SimTime, UpdateId, UpdateInfo};
use std::hint::black_box;

fn qinfo(seq: u64) -> QueryInfo {
    let arrival = SimTime::from_ms(seq);
    QueryInfo {
        arrival,
        seq,
        cost: SimDuration::from_ms(7),
        qosmax: 25.0,
        qodmax: 25.0,
        rtmax_ms: Some(75.0),
        vrd: 50.0 / 75.0,
        expiry: arrival + SimDuration::from_secs(180),
    }
}

fn uinfo(seq: u64) -> UpdateInfo {
    UpdateInfo {
        arrival: SimTime::from_ms(seq),
        seq,
        cost: SimDuration::from_ms(3),
        stock: StockId((seq % 64) as u32),
    }
}

fn bench_cycle<S: Scheduler, F: Fn() -> S>(c: &mut Criterion, name: &str, make: F) {
    c.bench_function(&format!("scheduler/{name}/admit_pop_cycle"), |b| {
        let mut s = make();
        let mut seq = 0u64;
        let mut sink = Vec::new();
        b.iter(|| {
            seq += 2;
            let now = SimTime::from_ms(seq);
            s.admit_query(QueryId(seq as u32), &qinfo(seq), now);
            s.admit_update(UpdateId(seq as u32), &uinfo(seq + 1), now);
            // Pop and finish both transactions, as the engine does on
            // every commit: the full per-transaction scheduler cost.
            for _ in 0..2 {
                if let Some(txn) = black_box(s.pop_next(now)) {
                    s.finish(txn);
                }
            }
            // The engine drains buffered decisions once per cycle; a
            // no-op for schedulers with tracing off.
            s.drain_decisions(&mut sink);
            black_box(&mut sink).clear();
        })
    });
}

fn bench_all(c: &mut Criterion) {
    bench_cycle(c, "fifo", GlobalFifo::new);
    bench_cycle(c, "uh", DualQueue::uh);
    bench_cycle(c, "qh", DualQueue::qh);
    // Decision tracing defaults to off; this is the guarded fast path.
    bench_cycle(c, "quts", Quts::with_defaults);
    bench_cycle(c, "quts_traced", || {
        let mut s = Quts::with_defaults();
        s.set_decision_trace(true);
        s
    });
}

fn bench_quts_refresh(c: &mut Criterion) {
    c.bench_function("scheduler/quts/timer_refresh", |b| {
        let mut s = Quts::with_defaults();
        s.admit_query(QueryId(0), &qinfo(0), SimTime::ZERO);
        let mut now_ms = 0u64;
        b.iter(|| {
            now_ms += 10; // one atom boundary per call
            s.on_timer(SimTime::from_ms(now_ms));
        })
    });
}

fn bench_deep_queue(c: &mut Criterion) {
    c.bench_function("scheduler/qh/pop_from_10k_queries", |b| {
        // Steady state at depth 10 000: each iteration pops the best
        // query, finishes it, and admits a replacement — the deep-queue
        // cost one dispatch pays, with no allocator teardown in the
        // timed region.
        let mut s = DualQueue::qh();
        for i in 0..10_000u64 {
            s.admit_query(QueryId(i as u32), &qinfo(i), SimTime::ZERO);
        }
        let mut seq = 10_000u64;
        b.iter(|| {
            if let Some(txn) = black_box(s.pop_next(SimTime::ZERO)) {
                s.finish(txn);
            }
            s.admit_query(QueryId(seq as u32), &qinfo(seq), SimTime::ZERO);
            seq += 1;
        })
    });
}

criterion_group!(benches, bench_all, bench_quts_refresh, bench_deep_queue);
criterion_main!(benches);
