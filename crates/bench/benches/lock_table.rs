//! Microbenchmarks of the 2PL-HP lock table.
//!
//! Every dispatch acquires (and every commit releases) the transaction's
//! lock set; the eviction path additionally tears down a victim. These
//! are the per-transaction constant costs of the concurrency-control
//! substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use quts_db::{LockMode, LockTable, StockId, TxnToken};
use std::hint::black_box;

/// Tokens cycle over a bounded window, as they do in the simulator
/// (transaction ids are bounded by the trace): a released token may be
/// reused, which keeps the dense per-token table at its steady-state size.
const TOKEN_WINDOW: u64 = 0x3FF;

fn bench_uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_table");
    g.bench_function("acquire_release_read", |b| {
        let mut lt = LockTable::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let txn = TxnToken(t & TOKEN_WINDOW);
            lt.acquire(txn, t as f64, StockId(black_box(7)), LockMode::Read);
            lt.release_all(txn);
        })
    });
    g.bench_function("acquire_release_write", |b| {
        let mut lt = LockTable::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let txn = TxnToken(t & TOKEN_WINDOW);
            lt.acquire(txn, t as f64, StockId(black_box(7)), LockMode::Write);
            lt.release_all(txn);
        })
    });
    g.bench_function("acquire_release_5_items", |b| {
        let mut lt = LockTable::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let txn = TxnToken(t & TOKEN_WINDOW);
            for i in 0..5u32 {
                lt.acquire(txn, t as f64, StockId(i), LockMode::Read);
            }
            lt.release_all(txn);
        })
    });
    g.finish();
}

fn bench_eviction(c: &mut Criterion) {
    c.bench_function("lock_table/hp_eviction", |b| {
        let mut lt = LockTable::new();
        let mut t = 0u64;
        b.iter(|| {
            // Low-priority reader takes the item, high-priority writer
            // evicts it: the 2PL-HP restart path end-to-end.
            t += 2;
            let victim = TxnToken((t - 1) & TOKEN_WINDOW);
            let winner = TxnToken(t & TOKEN_WINDOW);
            lt.acquire(victim, (t - 1) as f64, StockId(3), LockMode::Read);
            lt.acquire(winner, t as f64, StockId(3), LockMode::Write);
            lt.release_all(winner);
        })
    });
}

criterion_group!(benches, bench_uncontended, bench_eviction);
criterion_main!(benches);
