//! End-to-end simulator throughput: one full (scaled) trace per
//! iteration, per scheduling policy.
//!
//! The absolute numbers answer "how long does a paper-scale experiment
//! take": at scale 60 (30 s of trace, ~9.7k transactions) a run is a few
//! milliseconds, so a full-scale figure costs on the order of a second.

use criterion::{criterion_group, criterion_main, Criterion};
use quts_bench::{paper_trace, run_policy, run_policy_with, Policy};
use quts_sim::{SimConfig, TraceConfig};
use quts_workload::{qcgen, QcPreset, QcShape};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut trace = paper_trace(60, 1);
    qcgen::assign_qcs(&mut trace, QcPreset::Balanced, QcShape::Step, 7);
    let txns = trace.queries.len() + trace.updates.len();

    let mut g = c.benchmark_group("simulator_30s_trace");
    g.throughput(criterion::Throughput::Elements(txns as u64));
    g.sample_size(20);
    for (name, policy) in [
        ("fifo", Policy::Fifo),
        ("uh", Policy::Uh),
        ("qh", Policy::Qh),
        ("quts", Policy::quts_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_policy(black_box(&trace), policy)))
        });
    }
    // The same run with lifecycle spans and the full decision ring on —
    // the observability overhead ceiling (the default is off).
    for (name, cfg) in [
        ("quts-trace-spans", TraceConfig::spans()),
        ("quts-trace-full", TraceConfig::full()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let sim = SimConfig {
                    trace: cfg,
                    ..SimConfig::default()
                };
                black_box(run_policy_with(
                    black_box(&trace),
                    Policy::quts_default(),
                    sim,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
