//! Microbenchmarks of the Quality Contract hot path.
//!
//! Contract evaluation happens at every query commit (profit) and every
//! admission (VRD priority); on the paper's workload that is ~82k commits
//! and admissions per 30 minutes — cheap, but these benches guard against
//! regressions since the simulator calls them millions of times across an
//! experiment sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use quts_qc::{ProfitFn, QualityContract};
use std::hint::black_box;

fn bench_profit_fns(c: &mut Criterion) {
    let mut g = c.benchmark_group("profit_fn");
    let step = ProfitFn::step(25.0, 75.0);
    g.bench_function("step", |b| {
        b.iter(|| black_box(&step).value_at(black_box(42.0)))
    });
    let linear = ProfitFn::linear(25.0, 75.0);
    g.bench_function("linear", |b| {
        b.iter(|| black_box(&linear).value_at(black_box(42.0)))
    });
    let pw = ProfitFn::piecewise(vec![
        (0.0, 25.0),
        (10.0, 20.0),
        (30.0, 12.0),
        (50.0, 6.0),
        (75.0, 0.0),
    ])
    .unwrap();
    g.bench_function("piecewise_5pt", |b| {
        b.iter(|| black_box(&pw).value_at(black_box(42.0)))
    });
    g.finish();
}

fn bench_contract(c: &mut Criterion) {
    let mut g = c.benchmark_group("contract");
    let qc = QualityContract::step(25.0, 75.0, 25.0, 1);
    g.bench_function("total_profit", |b| {
        b.iter(|| black_box(&qc).total_profit(black_box(42.0), black_box(0.0)))
    });
    g.bench_function("vrd_priority", |b| b.iter(|| black_box(&qc).vrd_priority()));
    g.bench_function("construct_step", |b| {
        b.iter(|| QualityContract::step(black_box(25.0), 75.0, 25.0, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_profit_fns, bench_contract);
criterion_main!(benches);
