//! Workload-generation throughput: how fast the calibrated trace
//! generator and QC presets produce a runnable workload.

use criterion::{criterion_group, criterion_main, Criterion};
use quts_workload::{qcgen, QcPreset, QcShape, StockWorkloadConfig};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.sample_size(20);
    g.bench_function("generate_30s_trace", |b| {
        let cfg = StockWorkloadConfig::default().scaled(60);
        b.iter(|| black_box(cfg.generate()))
    });
    g.bench_function("assign_qcs_30s_trace", |b| {
        let trace = StockWorkloadConfig::default().scaled(60).generate();
        b.iter_batched(
            || trace.clone(),
            |mut t| {
                qcgen::assign_qcs(&mut t, QcPreset::Spectrum { k: 5 }, QcShape::Step, 7);
                black_box(t)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_csv(c: &mut Criterion) {
    let trace = StockWorkloadConfig::default().scaled(120).generate();
    let mut buf = Vec::new();
    trace.write_csv(&mut buf).unwrap();
    let mut g = c.benchmark_group("trace_csv");
    g.sample_size(20);
    g.bench_function("write_15s_trace", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            black_box(&trace).write_csv(&mut out).unwrap();
            black_box(out)
        })
    });
    g.bench_function("read_15s_trace", |b| {
        b.iter(|| quts_workload::Trace::read_csv(&mut black_box(buf.as_slice())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_generate, bench_csv);
criterion_main!(benches);
