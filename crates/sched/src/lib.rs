//! # Schedulers for queries and updates under Quality Contracts
//!
//! The policies evaluated in the QUTS paper:
//!
//! * [`GlobalFifo`] — one queue for both classes, ordered by arrival
//!   (Section 3.1; the only sensible single-queue policy, since QoS and
//!   QoD priorities are incomparable).
//! * [`GlobalGreedy`] — the single-*priority*-queue strawman of Section
//!   3.1, merging the two incomparable scales with a fixed exchange
//!   rate; exists to demonstrate empirically why it cannot win.
//! * [`DualQueue`] — preemptive dual priority queues with a *fixed*
//!   class priority: Update-High / Query-High, with VRD or FIFO query
//!   ordering ([`DualQueue::uh`], [`DualQueue::qh`], and the intro's
//!   naive [`DualQueue::fifo_uh`] / [`DualQueue::fifo_qh`]).
//! * [`Quts`] — the paper's contribution: a two-level scheduler whose
//!   high level hands the CPU to the query queue with probability ρ
//!   (re-drawn every atom time τ) and adapts ρ every adaptation period ω
//!   from the submitted Quality Contracts; the low level orders each
//!   queue independently ([`QueryOrder`] for queries, FIFO for updates).
//!
//! The ρ model itself — `Q ≈ QOSmax·ρ + QODmax·ρ·(1−ρ)` and its closed-
//! form maximiser — lives in [`rho`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dual;
pub mod fifo;
pub mod greedy;
pub mod nonpreemptive;
pub mod policy;
pub mod quts;
pub mod rho;

pub use dual::DualQueue;
pub use fifo::GlobalFifo;
pub use greedy::GlobalGreedy;
pub use nonpreemptive::NonPreemptive;
pub use policy::{QueryKey, QueryOrder, QueryQueue, UpdateQueue};
pub use quts::{Quts, QutsConfig};
pub use rho::{modeled_profit, optimal_rho, RhoController};
