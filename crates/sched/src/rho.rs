//! The ρ model: how much CPU should queries get?
//!
//! Section 4.1 of the paper models the total profit as a function of the
//! query CPU share ρ:
//!
//! ```text
//! QOS  ≈ QOSmax · ρ                      (Eq. 1)
//! QOD  ≈ QODmax · ρ · (1 − ρ)            (Eq. 2)
//! Q    ≈ QOSmax · ρ + QODmax · ρ · (1−ρ) (Eq. 3)
//! ```
//!
//! QoS profit grows with query CPU; QoD profit needs update CPU *and*
//! queries must still commit before their lifetime, hence the `ρ·(1−ρ)`
//! term. Setting `dQ/dρ = 0` gives the closed-form optimum
//!
//! ```text
//! ρ* = min( QOSmax / (2·QODmax) + 0.5 , 1 )   (Eq. 4)
//! ```
//!
//! — never below 0.5: queries should hold the higher priority more than
//! half the time under this model. [`RhoController`] adds the paper's
//! aging scheme (Eq. 5–6): at each adaptation boundary the new optimum is
//! blended with the previous value, `ρ_k = (1−α)·ρ_{k−1} + α·ρ_new`.

/// The modelled total profit `Q(ρ)` of Eq. 3, given the submitted maxima.
pub fn modeled_profit(rho: f64, qos_max: f64, qod_max: f64) -> f64 {
    qos_max * rho + qod_max * rho * (1.0 - rho)
}

/// The closed-form optimal query CPU share of Eq. 4.
///
/// Degenerate inputs: with no QoD potential the optimum is 1 (all CPU to
/// queries); with no profit at all there is nothing to optimise and the
/// neutral 0.75 (midpoint of the feasible `[0.5, 1]` band) is returned.
pub fn optimal_rho(qos_max: f64, qod_max: f64) -> f64 {
    debug_assert!(qos_max >= 0.0 && qod_max >= 0.0);
    if qod_max <= 0.0 {
        if qos_max <= 0.0 {
            return 0.75;
        }
        return 1.0;
    }
    (qos_max / (2.0 * qod_max) + 0.5).min(1.0)
}

/// Eq. 4 with the clamp flipped from `min` to `max` — the deliberately
/// wrong variant behind [`RhoController::seed_flipped_clamp_mutation`].
fn mutated_optimal_rho(qos_max: f64, qod_max: f64) -> f64 {
    if qod_max <= 0.0 {
        if qos_max <= 0.0 {
            return 0.75;
        }
        return 1.0;
    }
    (qos_max / (2.0 * qod_max) + 0.5).max(1.0)
}

/// Smoothed, periodically re-optimised ρ (Eq. 5–6).
#[derive(Debug, Clone)]
pub struct RhoController {
    alpha: f64,
    rho: f64,
    flip_clamp: bool,
}

impl RhoController {
    /// A controller with aging factor `alpha` and an initial ρ.
    ///
    /// # Panics
    /// Panics unless `alpha ∈ (0, 1]` and `rho ∈ [0, 1]`.
    pub fn new(alpha: f64, initial_rho: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!((0.0..=1.0).contains(&initial_rho), "rho must be in [0, 1]");
        RhoController {
            alpha,
            rho: initial_rho,
            flip_clamp: false,
        }
    }

    /// Conformance-harness mutation hook: replaces Eq. 4's `min(·, 1)`
    /// clamp with `max(·, 1)`, letting ρ escape the feasible band. The
    /// differential oracle must detect a controller poisoned this way;
    /// it has no legitimate production use.
    #[doc(hidden)]
    pub fn seed_flipped_clamp_mutation(&mut self) {
        self.flip_clamp = true;
    }

    /// The current smoothed ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The configured aging factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adaptation-boundary step: feeds the previous period's submitted
    /// `QOSmax` / `QODmax` sums, returns the new smoothed ρ.
    ///
    /// A period in which nothing was submitted carries no information and
    /// leaves ρ unchanged (rather than dragging it toward a default).
    pub fn adapt(&mut self, qos_max: f64, qod_max: f64) -> f64 {
        if qos_max > 0.0 || qod_max > 0.0 {
            let target = if self.flip_clamp {
                mutated_optimal_rho(qos_max, qod_max)
            } else {
                optimal_rho(qos_max, qod_max)
            };
            self.rho = (1.0 - self.alpha) * self.rho + self.alpha * target;
        }
        self.rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_equation_4() {
        // Balanced preferences: rho = 0.5/(2*0.5)+0.5 = 1.0.
        assert_eq!(optimal_rho(0.5, 0.5), 1.0);
        // QoD-heavy: QOSmax% = 0.1, QODmax% = 0.9 → 0.1/1.8 + 0.5 ≈ 0.556.
        assert!((optimal_rho(0.1, 0.9) - (0.1 / 1.8 + 0.5)).abs() < 1e-12);
        // Strong QoS: clamps at 1.
        assert_eq!(optimal_rho(10.0, 1.0), 1.0);
    }

    #[test]
    fn rho_never_below_half_with_positive_profit() {
        for qos in [0.0, 0.1, 1.0, 10.0] {
            for qod in [0.1, 1.0, 10.0] {
                let r = optimal_rho(qos, qod);
                assert!((0.5..=1.0).contains(&r), "rho {r} for ({qos}, {qod})");
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(optimal_rho(1.0, 0.0), 1.0);
        assert_eq!(optimal_rho(0.0, 0.0), 0.75);
        assert!((optimal_rho(0.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn controller_smooths_toward_target() {
        let mut c = RhoController::new(0.5, 0.6);
        // Target is 1.0 (QoS-only): each step halves the distance.
        c.adapt(10.0, 0.0);
        assert!((c.rho() - 0.8).abs() < 1e-12);
        c.adapt(10.0, 0.0);
        assert!((c.rho() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_period_leaves_rho_unchanged() {
        let mut c = RhoController::new(0.3, 0.77);
        c.adapt(0.0, 0.0);
        assert_eq!(c.rho(), 0.77);
    }

    #[test]
    fn alpha_one_jumps_to_target() {
        let mut c = RhoController::new(1.0, 0.5);
        c.adapt(1.0, 1.0);
        assert_eq!(c.rho(), 1.0);
        c.adapt(0.0, 1.0);
        assert_eq!(c.rho(), 0.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = RhoController::new(0.0, 0.5);
    }

    #[test]
    fn formula_clamps_to_upper_band_edge() {
        // Whenever QOSmax >= QODmax the raw formula reaches >= 1 and the
        // min-clamp must hold it at exactly 1.
        for (qos, qod) in [(1.0, 1.0), (5.0, 5.0), (9.0, 3.0), (100.0, 1.0)] {
            assert_eq!(optimal_rho(qos, qod), 1.0, "({qos}, {qod})");
        }
        // And the open-form region below the clamp is exact.
        assert!((optimal_rho(1.0, 4.0) - 0.625).abs() < 1e-15);
        assert!((optimal_rho(2.0, 8.0) - 0.625).abs() < 1e-15);
    }

    #[test]
    fn formula_never_leaves_band_over_grid() {
        // Dense sweep of the whole non-degenerate input plane: ρ* stays
        // clamped to [0.5, 1] regardless of how lopsided the maxima are.
        for i in 0..=200 {
            for j in 1..=200 {
                let qos = i as f64 * 0.5;
                let qod = j as f64 * 0.5;
                let r = optimal_rho(qos, qod);
                assert!((0.5..=1.0).contains(&r), "rho {r} for ({qos}, {qod})");
            }
        }
    }

    #[test]
    fn qod_zero_gives_all_cpu_to_queries() {
        // QODmax = 0 is the paper's degenerate "nobody cares about
        // freshness" case: every positive QOSmax pins ρ* at 1.
        for qos in [1e-9, 0.5, 1.0, 42.0, 1e9] {
            assert_eq!(optimal_rho(qos, 0.0), 1.0, "qos {qos}");
        }
        assert_eq!(optimal_rho(0.0, 0.0), 0.75);
    }

    #[test]
    fn empty_periods_never_move_rho_through_a_sequence() {
        // Interleave informative and empty periods: the empty ones are
        // exact no-ops, so the trajectory equals the one with the empty
        // periods deleted.
        let mut with_gaps = RhoController::new(0.4, 0.75);
        let mut without = RhoController::new(0.4, 0.75);
        for (qos, qod) in [(3.0, 1.0), (0.0, 0.0), (1.0, 4.0), (0.0, 0.0), (5.0, 5.0)] {
            with_gaps.adapt(qos, qod);
            if qos > 0.0 || qod > 0.0 {
                without.adapt(qos, qod);
            }
        }
        assert_eq!(with_gaps.rho(), without.rho());
    }

    #[test]
    fn aging_smoothing_pinned_trajectory() {
        // Eq. 5–6 with alpha = 0.25 starting at 0.75 against a constant
        // target of 0.5 (QoD-only periods): rho_k = 0.5 + 0.25 * 0.75^k.
        let mut c = RhoController::new(0.25, 0.75);
        let mut expect = 0.75;
        for _ in 0..8 {
            let got = c.adapt(0.0, 1.0);
            expect = 0.75 * expect + 0.25 * 0.5;
            assert!((got - expect).abs() < 1e-12, "got {got}, expect {expect}");
        }
        // After eight periods the distance to target has decayed by 0.75^8.
        assert!((c.rho() - (0.5 + 0.25 * 0.75f64.powi(8))).abs() < 1e-12);
    }

    #[test]
    fn flipped_clamp_mutation_escapes_the_band() {
        let mut c = RhoController::new(1.0, 0.75);
        c.seed_flipped_clamp_mutation();
        // QOSmax > QODmax drives the raw formula above 1; the flipped
        // clamp then takes the max, leaving the feasible band.
        let r = c.adapt(9.0, 3.0);
        assert!(r > 1.0, "mutated controller should leave [0.5, 1], got {r}");
        // The healthy controller clamps the same inputs to exactly 1.
        let mut h = RhoController::new(1.0, 0.75);
        assert_eq!(h.adapt(9.0, 3.0), 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Eq. 4 really does maximise Eq. 3 over a fine grid.
        #[test]
        fn closed_form_is_argmax(qos in 0.01..100.0f64, qod in 0.01..100.0f64) {
            let star = optimal_rho(qos, qod);
            let best = modeled_profit(star, qos, qod);
            for i in 0..=1000 {
                let rho = i as f64 / 1000.0;
                prop_assert!(modeled_profit(rho, qos, qod) <= best + 1e-9);
            }
        }

        /// The controller always stays within [0.5, 1] once fed positive
        /// profit, starting from any feasible point in that band.
        #[test]
        fn controller_stays_in_band(
            alpha in 0.01..1.0f64,
            init in 0.5..1.0f64,
            periods in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..50),
        ) {
            let mut c = RhoController::new(alpha, init);
            for (qos, qod) in periods {
                let r = c.adapt(qos, qod);
                prop_assert!((0.5..=1.0).contains(&r), "rho left the band: {r}");
            }
        }

        /// Repeatedly adapting to a fixed workload converges to its
        /// closed-form optimum.
        #[test]
        fn converges_to_target(qos in 0.01..10.0f64, qod in 0.01..10.0f64) {
            let mut c = RhoController::new(0.3, 0.75);
            for _ in 0..200 {
                c.adapt(qos, qod);
            }
            prop_assert!((c.rho() - optimal_rho(qos, qod)).abs() < 1e-6);
        }
    }
}
