//! A single *priority* queue over both classes — the strawman Section 3.1
//! of the paper argues cannot work.
//!
//! Query priorities live on a profit-per-deadline scale (VRD); update
//! priorities live on a staleness-pressure scale. To merge them into one
//! queue you must pick an *exchange rate* between the two scales.
//! [`GlobalGreedy`] does exactly that: queries are ranked by VRD, updates
//! by a flat `exchange_rate`, and the queue pops the maximum.
//!
//! The paper's claim — reproduced by the `ablations` experiment — is that
//! no fixed exchange rate is right: a low rate degenerates to Query-High
//! (updates starve whenever queries wait), a high rate to Update-High
//! (queries starve under update surges), and every intermediate value is
//! merely a blend that some workload mix defeats. The information needed
//! to set the rate correctly *is* the users' QoS/QoD preference mix, and
//! reacting to it per-period is precisely what QUTS' two-level design
//! does instead.

use crate::policy::UpdateQueue;
use quts_sim::{QueryId, QueryInfo, Scheduler, SimTime, TxnRef, UpdateId, UpdateInfo};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

#[derive(Debug, Clone, Copy)]
struct Entry {
    priority: f64,
    seq: u64,
    txn: TxnRef,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A placeholder update id used on heap *slots* — a slot entry only says
/// "an update won this pop"; the shadow FIFO picks which one.
const UPDATE_SLOT: TxnRef = TxnRef::Update(UpdateId(u32::MAX));

/// Non-preemptive greedy policy over one merged priority queue:
/// `priority(query) = VRD`, `priority(update) = exchange_rate`.
///
/// Updates are represented in the heap by interchangeable *slots* at the
/// exchange rate; when a slot wins, the FIFO-correct update (with
/// register-table position inheritance) is the one served. Invalidation
/// can leave surplus slots behind; they die silently when popped.
#[derive(Debug)]
pub struct GlobalGreedy {
    exchange_rate: f64,
    heap: BinaryHeap<Entry>,
    /// Per-query `(priority, seq, queued-copies)`; copies > 1 after a
    /// requeue, dead heap duplicates are skipped at pop.
    queries: HashMap<QueryId, (f64, u64, u32)>,
    live_queries: usize,
    /// FIFO among updates, preserving register-table position
    /// inheritance.
    update_order: UpdateQueue,
}

impl GlobalGreedy {
    /// A greedy merger valuing every queued update at `exchange_rate`
    /// (on the same scale as query VRD: dollars per millisecond of
    /// relative deadline).
    ///
    /// # Panics
    /// Panics unless the rate is finite and non-negative.
    pub fn new(exchange_rate: f64) -> Self {
        assert!(
            exchange_rate.is_finite() && exchange_rate >= 0.0,
            "exchange rate must be finite and non-negative"
        );
        GlobalGreedy {
            exchange_rate,
            heap: BinaryHeap::new(),
            queries: HashMap::new(),
            live_queries: 0,
            update_order: UpdateQueue::new(),
        }
    }

    /// The configured exchange rate.
    pub fn exchange_rate(&self) -> f64 {
        self.exchange_rate
    }

    fn push_update_slot(&mut self, seq: u64) {
        self.heap.push(Entry {
            priority: self.exchange_rate,
            seq,
            txn: UPDATE_SLOT,
        });
    }
}

impl Scheduler for GlobalGreedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, _now: SimTime) {
        self.queries.insert(id, (info.vrd, info.seq, 1));
        self.heap.push(Entry {
            priority: info.vrd,
            seq: info.seq,
            txn: TxnRef::Query(id),
        });
        self.live_queries += 1;
    }

    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, _now: SimTime) {
        self.update_order.admit(id, info);
        self.push_update_slot(info.seq);
    }

    fn drop_update(&mut self, id: UpdateId) {
        // The matching slot becomes surplus and dies when popped.
        self.update_order.drop_update(id);
    }

    fn finish(&mut self, txn: TxnRef) {
        match txn {
            // Any dead heap duplicates left behind die at pop (missing
            // memo reads as a skip).
            TxnRef::Query(q) => {
                self.queries.remove(&q);
            }
            TxnRef::Update(u) => self.update_order.finish(u),
        }
    }

    fn pop_next(&mut self, _now: SimTime) -> Option<TxnRef> {
        while let Some(entry) = self.heap.pop() {
            match entry.txn {
                TxnRef::Query(q) => {
                    let Some(memo) = self.queries.get_mut(&q) else {
                        continue;
                    };
                    if memo.2 == 0 {
                        continue; // dead duplicate from a requeue cycle
                    }
                    memo.2 -= 1;
                    self.live_queries -= 1;
                    return Some(TxnRef::Query(q));
                }
                TxnRef::Update(_) => {
                    // A slot won; serve the FIFO-correct update.
                    match self.update_order.pop() {
                        Some(u) => return Some(TxnRef::Update(u)),
                        None => continue, // surplus slot after invalidation
                    }
                }
            }
        }
        None
    }

    fn requeue(&mut self, txn: TxnRef, _now: SimTime) {
        match txn {
            TxnRef::Query(q) => {
                let memo = self
                    .queries
                    .get_mut(&q)
                    .expect("requeued query was never admitted");
                memo.2 += 1;
                let (priority, seq, _) = *memo;
                self.heap.push(Entry { priority, seq, txn });
                self.live_queries += 1;
            }
            TxnRef::Update(u) => {
                self.update_order.requeue(u);
                self.push_update_slot(0);
            }
        }
    }

    fn should_preempt(&mut self, _now: SimTime, _running: TxnRef) -> bool {
        false
    }

    fn has_pending(&self) -> bool {
        self.live_queries > 0 || !self.update_order.is_empty()
    }

    fn queue_depths(&self) -> (usize, usize) {
        (self.live_queries, self.update_order.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{qinfo, uinfo};

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn zero_rate_serves_updates_last() {
        let mut s = GlobalGreedy::new(0.0);
        s.admit_update(UpdateId(0), &uinfo(0, 0), NOW);
        s.admit_query(QueryId(0), &qinfo(1, 10.0, 10.0, 100.0), NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
        assert_eq!(s.pop_next(NOW), None);
    }

    #[test]
    fn huge_rate_serves_updates_first() {
        let mut s = GlobalGreedy::new(1e9);
        s.admit_query(QueryId(0), &qinfo(0, 99.0, 99.0, 10.0), NOW);
        s.admit_update(UpdateId(0), &uinfo(1, 0), NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
    }

    #[test]
    fn intermediate_rate_splits_by_vrd() {
        // Rate 0.5: queries above VRD 0.5 beat updates, others lose.
        let mut s = GlobalGreedy::new(0.5);
        s.admit_query(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0), NOW); // vrd 0.2
        s.admit_update(UpdateId(0), &uinfo(1, 0), NOW);
        s.admit_query(QueryId(1), &qinfo(2, 90.0, 0.0, 100.0), NOW); // vrd 0.9
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(1))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
    }

    #[test]
    fn updates_stay_fifo_among_themselves() {
        let mut s = GlobalGreedy::new(1.0);
        s.admit_update(UpdateId(5), &uinfo(10, 0), NOW);
        s.admit_update(UpdateId(2), &uinfo(11, 1), NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(5))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(2))));
    }

    #[test]
    fn dropped_updates_are_skipped() {
        let mut s = GlobalGreedy::new(1.0);
        s.admit_update(UpdateId(0), &uinfo(0, 0), NOW);
        s.admit_update(UpdateId(1), &uinfo(1, 0), NOW);
        s.drop_update(UpdateId(0));
        assert!(s.has_pending());
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(1))));
        assert_eq!(s.pop_next(NOW), None);
        assert!(!s.has_pending());
    }

    #[test]
    fn requeue_round_trips() {
        let mut s = GlobalGreedy::new(0.5);
        s.admit_query(QueryId(0), &qinfo(0, 90.0, 0.0, 100.0), NOW);
        s.admit_update(UpdateId(0), &uinfo(1, 0), NOW);
        let first = s.pop_next(NOW).unwrap();
        assert_eq!(first, TxnRef::Query(QueryId(0)));
        s.requeue(first, NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
        let u = s.pop_next(NOW).unwrap();
        s.requeue(u, NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        let _ = GlobalGreedy::new(-1.0);
    }
}
