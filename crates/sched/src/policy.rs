//! Low-level (per-class) queue orderings.
//!
//! The two-level design deliberately leaves the per-class policy open:
//! "QUTS can utilize any priority scheme that considers both time and
//! profit constraints for queries and staleness and profit constraints
//! for updates" (Section 4). The paper — and our default — uses VRD for
//! queries and FIFO for updates; the alternatives here feed the ablation
//! benches.

use quts_sim::{QueryId, QueryInfo, UpdateId, UpdateInfo};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Priority rule for the query queue. All rules earn a higher priority
/// for "more profit sooner".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryOrder {
    /// Value over Relative Deadline: `(qosmax + qodmax) / rtmax`
    /// (Haritsa et al.; the paper's choice).
    #[default]
    Vrd,
    /// Arrival order.
    Fifo,
    /// Earliest absolute deadline (`arrival + rtmax`) first.
    Edf,
    /// Profit per unit of CPU demand: `(qosmax + qodmax) / cost`.
    ProfitDensity,
}

impl QueryOrder {
    /// The priority key for a query; larger keys run first.
    pub fn key(self, info: &QueryInfo) -> f64 {
        match self {
            QueryOrder::Vrd => info.vrd,
            QueryOrder::Fifo => -(info.seq as f64),
            QueryOrder::Edf => {
                let rtmax_us = info.rtmax_ms.map(|ms| (ms * 1000.0) as u64).unwrap_or(
                    info.expiry
                        .as_micros()
                        .saturating_sub(info.arrival.as_micros()),
                );
                -((info.arrival.as_micros() + rtmax_us) as f64)
            }
            QueryOrder::ProfitDensity => {
                (info.qosmax + info.qodmax) / info.cost.as_ms_f64().max(1e-9)
            }
        }
    }

    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryOrder::Vrd => "VRD",
            QueryOrder::Fifo => "FIFO",
            QueryOrder::Edf => "EDF",
            QueryOrder::ProfitDensity => "PD",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct QEntry {
    key: f64,
    seq: u64,
    id: QueryId,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QEntry {}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: larger key first; ties broken by earlier arrival.
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of queries under a [`QueryOrder`].
#[derive(Debug)]
pub struct QueryQueue {
    order: QueryOrder,
    heap: BinaryHeap<QEntry>,
    // Key/seq memo so a paused query can be re-inserted without its info.
    memo: HashMap<QueryId, (f64, u64)>,
}

impl QueryQueue {
    /// An empty queue with the given ordering.
    pub fn new(order: QueryOrder) -> Self {
        QueryQueue {
            order,
            heap: BinaryHeap::new(),
            memo: HashMap::new(),
        }
    }

    /// The configured ordering.
    pub fn order(&self) -> QueryOrder {
        self.order
    }

    /// Admits a newly arrived query.
    pub fn admit(&mut self, id: QueryId, info: &QueryInfo) {
        let key = self.order.key(info);
        self.memo.insert(id, (key, info.seq));
        self.heap.push(QEntry {
            key,
            seq: info.seq,
            id,
        });
    }

    /// Re-inserts a paused (previously popped) query under its original
    /// priority. The memo survives popping, so pausing needs no
    /// re-computation.
    ///
    /// # Panics
    /// Panics if the query was never admitted.
    pub fn requeue(&mut self, id: QueryId) {
        let &(key, seq) = self
            .memo
            .get(&id)
            .expect("requeued query was never admitted");
        self.heap.push(QEntry { key, seq, id });
    }

    /// Removes and returns the highest-priority query.
    pub fn pop(&mut self) -> Option<QueryId> {
        self.heap.pop().map(|e| e.id)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued queries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A FIFO queue of updates with O(1) lazy removal of invalidated entries.
#[derive(Debug, Default)]
pub struct UpdateQueue {
    heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    dropped: HashSet<UpdateId>,
    memo: HashMap<UpdateId, u64>,
    live: usize,
}

impl UpdateQueue {
    /// An empty update queue.
    pub fn new() -> Self {
        UpdateQueue::default()
    }

    /// Admits a newly arrived update (FIFO position by arrival order).
    pub fn admit(&mut self, id: UpdateId, info: &UpdateInfo) {
        self.memo.insert(id, info.seq);
        self.heap.push(std::cmp::Reverse((info.seq, id.0)));
        self.live += 1;
    }

    /// Re-inserts a paused (previously popped) update at its original
    /// FIFO position.
    ///
    /// # Panics
    /// Panics if the update was never admitted.
    pub fn requeue(&mut self, id: UpdateId) {
        let &seq = self
            .memo
            .get(&id)
            .expect("requeued update was never admitted");
        self.heap.push(std::cmp::Reverse((seq, id.0)));
        self.live += 1;
    }

    /// Marks a *queued* update invalidated; it will be skipped when its
    /// heap entry is reached. Idempotent.
    pub fn drop_update(&mut self, id: UpdateId) {
        if self.memo.remove(&id).is_some() && self.dropped.insert(id) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Removes and returns the oldest live update.
    pub fn pop(&mut self) -> Option<UpdateId> {
        while let Some(std::cmp::Reverse((_, raw))) = self.heap.pop() {
            let id = UpdateId(raw);
            if self.dropped.remove(&id) {
                continue;
            }
            self.live -= 1;
            return Some(id);
        }
        None
    }

    /// Whether no live updates are queued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of live updates queued.
    pub fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use quts_db::StockId;
    use quts_sim::{SimDuration, SimTime};

    /// A QueryInfo with the given arrival order, profits and deadline.
    pub fn qinfo(seq: u64, qosmax: f64, qodmax: f64, rtmax_ms: f64) -> QueryInfo {
        let arrival = SimTime::from_ms(seq);
        QueryInfo {
            arrival,
            seq,
            cost: SimDuration::from_ms(7),
            qosmax,
            qodmax,
            rtmax_ms: Some(rtmax_ms),
            vrd: (qosmax + qodmax) / rtmax_ms,
            expiry: arrival + SimDuration::from_ms(1000),
        }
    }

    /// An UpdateInfo with the given arrival order.
    pub fn uinfo(seq: u64, stock: u32) -> UpdateInfo {
        UpdateInfo {
            arrival: SimTime::from_ms(seq),
            seq,
            cost: SimDuration::from_ms(3),
            stock: StockId(stock),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn vrd_orders_by_profit_over_deadline() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0)); // vrd 0.2
        q.admit(QueryId(1), &qinfo(1, 40.0, 40.0, 100.0)); // vrd 0.8
        q.admit(QueryId(2), &qinfo(2, 30.0, 0.0, 50.0)); // vrd 0.6
        assert_eq!(q.pop(), Some(QueryId(1)));
        assert_eq!(q.pop(), Some(QueryId(2)));
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut q = QueryQueue::new(QueryOrder::Fifo);
        q.admit(QueryId(5), &qinfo(5, 99.0, 99.0, 10.0));
        q.admit(QueryId(6), &qinfo(6, 1.0, 1.0, 999.0));
        assert_eq!(q.pop(), Some(QueryId(5)));
        assert_eq!(q.pop(), Some(QueryId(6)));
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        let mut q = QueryQueue::new(QueryOrder::Edf);
        q.admit(QueryId(0), &qinfo(0, 1.0, 1.0, 500.0)); // deadline 500
        q.admit(QueryId(1), &qinfo(1, 1.0, 1.0, 50.0)); // deadline 51
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn profit_density_prefers_cheap_profit() {
        let mut q = QueryQueue::new(QueryOrder::ProfitDensity);
        q.admit(QueryId(0), &qinfo(0, 10.0, 0.0, 100.0));
        q.admit(QueryId(1), &qinfo(1, 50.0, 0.0, 100.0)); // same cost, more profit
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn vrd_ties_break_by_arrival() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0));
        q.admit(QueryId(1), &qinfo(1, 10.0, 10.0, 100.0));
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn requeue_restores_priority() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 40.0, 40.0, 100.0));
        q.admit(QueryId(1), &qinfo(1, 10.0, 10.0, 100.0));
        let popped = q.pop().unwrap();
        assert_eq!(popped, QueryId(0));
        // Pause: it must come back ahead of the low-priority one.
        q.requeue(popped);
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn requeue_unknown_query_panics() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.requeue(QueryId(3));
    }

    #[test]
    fn update_queue_is_fifo() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        u.admit(UpdateId(2), &uinfo(2, 2));
        assert_eq!(u.len(), 3);
        assert_eq!(u.pop(), Some(UpdateId(0)));
        assert_eq!(u.pop(), Some(UpdateId(1)));
        assert_eq!(u.pop(), Some(UpdateId(2)));
        assert!(u.is_empty());
    }

    #[test]
    fn dropped_updates_are_skipped() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 0));
        u.drop_update(UpdateId(0));
        assert_eq!(u.len(), 1);
        assert_eq!(u.pop(), Some(UpdateId(1)));
        assert!(u.is_empty());
        assert_eq!(u.pop(), None);
    }

    #[test]
    fn double_drop_is_idempotent() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.drop_update(UpdateId(0));
        u.drop_update(UpdateId(0));
        assert!(u.is_empty());
    }

    #[test]
    fn update_requeue_keeps_fifo_position() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        let first = u.pop().unwrap();
        assert_eq!(first, UpdateId(0));
        // Paused update 0 returns: must still precede update 1.
        u.requeue(first);
        assert_eq!(u.pop(), Some(UpdateId(0)));
        assert_eq!(u.pop(), Some(UpdateId(1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::testutil::*;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the order, every admitted query pops exactly once.
        #[test]
        fn conservation(
            n in 1u32..100,
            order_pick in 0usize..4,
        ) {
            let order = [QueryOrder::Vrd, QueryOrder::Fifo, QueryOrder::Edf, QueryOrder::ProfitDensity][order_pick];
            let mut q = QueryQueue::new(order);
            for i in 0..n {
                q.admit(QueryId(i), &qinfo(i as u64, (i % 7) as f64 + 1.0, (i % 3) as f64, 50.0 + i as f64));
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(id) = q.pop() {
                prop_assert!(seen.insert(id));
            }
            prop_assert_eq!(seen.len(), n as usize);
        }

        /// VRD pops in non-increasing key order.
        #[test]
        fn vrd_is_sorted(profits in proptest::collection::vec((1.0..100.0f64, 1.0..100.0f64, 10.0..200.0f64), 1..60)) {
            let mut q = QueryQueue::new(QueryOrder::Vrd);
            let mut keys = HashMap::new();
            for (i, &(qos, qod, rt)) in profits.iter().enumerate() {
                let info = qinfo(i as u64, qos, qod, rt);
                keys.insert(QueryId(i as u32), info.vrd);
                q.admit(QueryId(i as u32), &info);
            }
            let mut last = f64::INFINITY;
            while let Some(id) = q.pop() {
                let k = keys[&id];
                prop_assert!(k <= last + 1e-12);
                last = k;
            }
        }

        /// Update queue: pops are in arrival order and never include
        /// dropped ids.
        #[test]
        fn update_queue_fifo_with_drops(drops in proptest::collection::hash_set(0u32..50, 0..20)) {
            let mut u = UpdateQueue::new();
            for i in 0..50u32 {
                u.admit(UpdateId(i), &uinfo(i as u64, 0));
            }
            for &d in &drops {
                u.drop_update(UpdateId(d));
            }
            let mut last = None;
            let mut count = 0;
            while let Some(id) = u.pop() {
                prop_assert!(!drops.contains(&id.0));
                if let Some(prev) = last {
                    prop_assert!(id.0 > prev);
                }
                last = Some(id.0);
                count += 1;
            }
            prop_assert_eq!(count, 50 - drops.len());
        }
    }
}
