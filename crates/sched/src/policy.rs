//! Low-level (per-class) queue orderings.
//!
//! The two-level design deliberately leaves the per-class policy open:
//! "QUTS can utilize any priority scheme that considers both time and
//! profit constraints for queries and staleness and profit constraints
//! for updates" (Section 4). The paper — and our default — uses VRD for
//! queries and FIFO for updates; the alternatives here feed the ablation
//! benches.

use quts_sim::{QueryId, QueryInfo, UpdateId, UpdateInfo};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Priority rule for the query queue. All rules earn a higher priority
/// for "more profit sooner".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryOrder {
    /// Value over Relative Deadline: `(qosmax + qodmax) / rtmax`
    /// (Haritsa et al.; the paper's choice).
    #[default]
    Vrd,
    /// Arrival order.
    Fifo,
    /// Earliest absolute deadline (`arrival + rtmax`) first.
    Edf,
    /// Profit per unit of CPU demand: `(qosmax + qodmax) / cost`.
    ProfitDensity,
}

/// A query priority key; larger keys run first.
///
/// Real-valued policies (VRD, profit density) compare as `f64`s;
/// time-based policies (FIFO, EDF) compare on exact integer sequence
/// numbers / microseconds. Keeping the integers out of `f64` matters on
/// long-running live engines: past 2^53 events a cast loses low bits and
/// FIFO order silently degrades to "roughly FIFO".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKey {
    /// A real-valued priority; larger is better.
    Real(f64),
    /// An integer instant (sequence number or deadline in µs); *smaller*
    /// is better — earliest first.
    Earliest(u64),
}

impl QueryKey {
    /// Total order with "runs first" = `Ordering::Greater`. Variants never
    /// mix within one queue (a queue has one [`QueryOrder`]); across
    /// variants, `Real` arbitrarily sorts above `Earliest`.
    pub fn priority_cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (QueryKey::Real(a), QueryKey::Real(b)) => a.total_cmp(b),
            (QueryKey::Earliest(a), QueryKey::Earliest(b)) => b.cmp(a),
            (QueryKey::Real(_), QueryKey::Earliest(_)) => Ordering::Greater,
            (QueryKey::Earliest(_), QueryKey::Real(_)) => Ordering::Less,
        }
    }
}

impl QueryOrder {
    /// The priority key for a query.
    pub fn key(self, info: &QueryInfo) -> QueryKey {
        match self {
            QueryOrder::Vrd => QueryKey::Real(info.vrd),
            QueryOrder::Fifo => QueryKey::Earliest(info.seq),
            QueryOrder::Edf => {
                let rtmax_us = info.rtmax_ms.map(|ms| (ms * 1000.0) as u64).unwrap_or(
                    info.expiry
                        .as_micros()
                        .saturating_sub(info.arrival.as_micros()),
                );
                QueryKey::Earliest(info.arrival.as_micros() + rtmax_us)
            }
            QueryOrder::ProfitDensity => {
                QueryKey::Real((info.qosmax + info.qodmax) / info.cost.as_ms_f64().max(1e-9))
            }
        }
    }

    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryOrder::Vrd => "VRD",
            QueryOrder::Fifo => "FIFO",
            QueryOrder::Edf => "EDF",
            QueryOrder::ProfitDensity => "PD",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct QEntry {
    key: QueryKey,
    seq: u64,
    id: QueryId,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QEntry {}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first; ties broken by earlier arrival.
        self.key
            .priority_cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of queries under a [`QueryOrder`].
#[derive(Debug)]
pub struct QueryQueue {
    order: QueryOrder,
    heap: BinaryHeap<QEntry>,
    // Key/seq memo so a paused query can be re-inserted without its info.
    // Evicted by `finish` once the query reaches a terminal state.
    memo: HashMap<QueryId, (QueryKey, u64)>,
}

impl QueryQueue {
    /// An empty queue with the given ordering.
    pub fn new(order: QueryOrder) -> Self {
        QueryQueue {
            order,
            heap: BinaryHeap::new(),
            memo: HashMap::new(),
        }
    }

    /// The configured ordering.
    pub fn order(&self) -> QueryOrder {
        self.order
    }

    /// Admits a newly arrived query.
    pub fn admit(&mut self, id: QueryId, info: &QueryInfo) {
        let key = self.order.key(info);
        self.memo.insert(id, (key, info.seq));
        self.heap.push(QEntry {
            key,
            seq: info.seq,
            id,
        });
    }

    /// Re-inserts a paused (previously popped) query under its original
    /// priority. The memo survives popping, so pausing needs no
    /// re-computation.
    ///
    /// # Panics
    /// Panics if the query was never admitted (or already finished).
    pub fn requeue(&mut self, id: QueryId) {
        let &(key, seq) = self
            .memo
            .get(&id)
            .expect("requeued query was never admitted");
        self.heap.push(QEntry { key, seq, id });
    }

    /// Removes and returns the highest-priority query.
    pub fn pop(&mut self) -> Option<QueryId> {
        self.heap.pop().map(|e| e.id)
    }

    /// The highest-priority query without removing it.
    pub fn peek(&self) -> Option<QueryId> {
        self.heap.peek().map(|e| e.id)
    }

    /// Arrival sequence number of the highest-priority query. Lets a
    /// global-FIFO front end compare the query head against the update
    /// head without popping either.
    pub fn peek_seq(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.seq)
    }

    /// Evicts the priority memo of a query that reached a terminal state
    /// (committed or expired). Without this a long-running live engine
    /// retains one memo entry per query forever. Must only be called for
    /// queries no longer in the queue (popped, or never re-queued).
    pub fn finish(&mut self, id: QueryId) {
        self.memo.remove(&id);
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued queries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of retained priority memos (diagnostic; bounded by live
    /// queries when `finish` is called correctly).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

/// Slot value marking an invalidated (dropped) queue entry.
const SLOT_FREE: u32 = u32::MAX;

/// A FIFO queue of updates with O(1) admit/pop and O(1) lazy removal of
/// invalidated entries.
///
/// The queue proper is a `VecDeque` of `(seq, slot)` pairs kept sorted by
/// arrival sequence; `slots[slot]` holds the live update id occupying
/// that position, or [`SLOT_FREE`] once the update was invalidated. A
/// replacement update admitted with the invalidated update's sequence
/// number re-occupies its slot — that is how `InheritPosition` re-entry
/// stays O(1). Popping skips free slots lazily; no heap, no per-pop
/// hashing.
#[derive(Debug, Default)]
pub struct UpdateQueue {
    deque: VecDeque<(u64, u32)>,
    slots: Vec<u32>,
    free: Vec<u32>,
    // id → (seq, slot): survives popping so a paused update can be
    // re-queued; evicted by `finish`/`drop_update`.
    meta: HashMap<UpdateId, (u64, u32)>,
    // Invalidated seq → its still-queued slot, for position inheritance.
    dropped_seqs: HashMap<u64, u32>,
    live: usize,
}

impl UpdateQueue {
    /// An empty update queue.
    pub fn new() -> Self {
        UpdateQueue::default()
    }

    fn alloc_slot(&mut self, id: UpdateId) -> u32 {
        debug_assert_ne!(id.0, SLOT_FREE, "update id collides with the free marker");
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = id.0;
                slot
            }
            None => {
                self.slots.push(id.0);
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn insert_sorted(&mut self, seq: u64, slot: u32) {
        match self.deque.back() {
            Some(&(back_seq, _)) if seq < back_seq => {
                // Out-of-order admit (an inherited position whose original
                // entry was already skipped): restore sortedness. Cold
                // path — the simulator's fresh sequence numbers are
                // monotone and inheritance reuses in-place.
                let pos = self.deque.partition_point(|&(s, _)| s <= seq);
                self.deque.insert(pos, (seq, slot));
            }
            _ => self.deque.push_back((seq, slot)),
        }
    }

    /// Admits a newly arrived update (FIFO position by arrival order). An
    /// update admitted with the sequence number of a just-invalidated one
    /// inherits its queue position.
    pub fn admit(&mut self, id: UpdateId, info: &UpdateInfo) {
        if let Some(slot) = self.dropped_seqs.remove(&info.seq) {
            // Position inheritance: fill the invalidated entry's hole.
            self.slots[slot as usize] = id.0;
            self.meta.insert(id, (info.seq, slot));
            self.live += 1;
            return;
        }
        let slot = self.alloc_slot(id);
        self.meta.insert(id, (info.seq, slot));
        self.live += 1;
        self.insert_sorted(info.seq, slot);
    }

    /// Re-inserts a paused (previously popped) update at its original
    /// FIFO position.
    ///
    /// # Panics
    /// Panics if the update was never admitted (or already finished).
    pub fn requeue(&mut self, id: UpdateId) {
        let &(seq, _) = self
            .meta
            .get(&id)
            .expect("requeued update was never admitted");
        let slot = self.alloc_slot(id);
        self.meta.insert(id, (seq, slot));
        self.live += 1;
        // Under the single-CPU model the paused update was the oldest
        // live entry, so this is a front insertion; `insert_sorted`
        // handles the general case identically.
        let pos = self.deque.partition_point(|&(s, _)| s < seq);
        self.deque.insert(pos, (seq, slot));
    }

    /// Marks a *queued* update invalidated; it will be skipped when its
    /// queue position is reached (or re-occupied by a replacement).
    /// Idempotent; also evicts the update's re-queue memo.
    pub fn drop_update(&mut self, id: UpdateId) {
        let Some((seq, slot)) = self.meta.remove(&id) else {
            return;
        };
        if self.slots.get(slot as usize) == Some(&id.0) {
            self.slots[slot as usize] = SLOT_FREE;
            self.dropped_seqs.insert(seq, slot);
            self.live -= 1;
        }
    }

    /// Removes and returns the oldest live update.
    pub fn pop(&mut self) -> Option<UpdateId> {
        while let Some((seq, slot)) = self.deque.pop_front() {
            let raw = self.slots[slot as usize];
            self.slots[slot as usize] = SLOT_FREE;
            self.free.push(slot);
            if raw == SLOT_FREE {
                // Invalidated entry whose position was never inherited:
                // forget the inheritance hint.
                if self.dropped_seqs.get(&seq) == Some(&slot) {
                    self.dropped_seqs.remove(&seq);
                }
                continue;
            }
            self.live -= 1;
            return Some(UpdateId(raw));
        }
        None
    }

    /// Evicts the re-queue memo of an update that reached a terminal
    /// state (applied or aborted). Must only be called for updates no
    /// longer in the queue (popped, or never re-queued).
    pub fn finish(&mut self, id: UpdateId) {
        self.meta.remove(&id);
    }

    /// Whether no live updates are queued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of live updates queued.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Number of retained re-queue memos (diagnostic; bounded by live
    /// updates when `finish`/`drop_update` are called correctly).
    pub fn memo_len(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use quts_db::StockId;
    use quts_sim::{SimDuration, SimTime};

    /// A QueryInfo with the given arrival order, profits and deadline.
    pub fn qinfo(seq: u64, qosmax: f64, qodmax: f64, rtmax_ms: f64) -> QueryInfo {
        let arrival = SimTime::from_ms(seq);
        QueryInfo {
            arrival,
            seq,
            cost: SimDuration::from_ms(7),
            qosmax,
            qodmax,
            rtmax_ms: Some(rtmax_ms),
            vrd: (qosmax + qodmax) / rtmax_ms,
            expiry: arrival + SimDuration::from_ms(1000),
        }
    }

    /// An UpdateInfo with the given arrival order.
    pub fn uinfo(seq: u64, stock: u32) -> UpdateInfo {
        UpdateInfo {
            arrival: SimTime::from_ms(seq),
            seq,
            cost: SimDuration::from_ms(3),
            stock: StockId(stock),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn vrd_orders_by_profit_over_deadline() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0)); // vrd 0.2
        q.admit(QueryId(1), &qinfo(1, 40.0, 40.0, 100.0)); // vrd 0.8
        q.admit(QueryId(2), &qinfo(2, 30.0, 0.0, 50.0)); // vrd 0.6
        assert_eq!(q.pop(), Some(QueryId(1)));
        assert_eq!(q.pop(), Some(QueryId(2)));
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut q = QueryQueue::new(QueryOrder::Fifo);
        q.admit(QueryId(5), &qinfo(5, 99.0, 99.0, 10.0));
        q.admit(QueryId(6), &qinfo(6, 1.0, 1.0, 999.0));
        assert_eq!(q.pop(), Some(QueryId(5)));
        assert_eq!(q.pop(), Some(QueryId(6)));
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        assert_eq!(q.peek(), None);
        assert_eq!(q.peek_seq(), None);
        q.admit(QueryId(0), &qinfo(3, 10.0, 10.0, 100.0));
        q.admit(QueryId(1), &qinfo(4, 40.0, 40.0, 100.0));
        assert_eq!(q.peek(), Some(QueryId(1)));
        assert_eq!(q.peek_seq(), Some(4));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(QueryId(1)));
        assert_eq!(q.peek(), Some(QueryId(0)));
        assert_eq!(q.peek_seq(), Some(3));
    }

    #[test]
    fn fifo_key_is_exact_past_f64_precision() {
        // Consecutive sequence numbers beyond 2^53 collapse to the same
        // f64; the integer key must still order them strictly.
        let mut q = QueryQueue::new(QueryOrder::Fifo);
        let base = (1u64 << 53) + 4;
        assert_eq!(base as f64, (base + 1) as f64, "test premise");
        q.admit(QueryId(1), &qinfo(base + 1, 1.0, 1.0, 100.0));
        q.admit(QueryId(0), &qinfo(base, 1.0, 1.0, 100.0));
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        let mut q = QueryQueue::new(QueryOrder::Edf);
        q.admit(QueryId(0), &qinfo(0, 1.0, 1.0, 500.0)); // deadline 500
        q.admit(QueryId(1), &qinfo(1, 1.0, 1.0, 50.0)); // deadline 51
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn profit_density_prefers_cheap_profit() {
        let mut q = QueryQueue::new(QueryOrder::ProfitDensity);
        q.admit(QueryId(0), &qinfo(0, 10.0, 0.0, 100.0));
        q.admit(QueryId(1), &qinfo(1, 50.0, 0.0, 100.0)); // same cost, more profit
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn vrd_ties_break_by_arrival() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0));
        q.admit(QueryId(1), &qinfo(1, 10.0, 10.0, 100.0));
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    fn requeue_restores_priority() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 40.0, 40.0, 100.0));
        q.admit(QueryId(1), &qinfo(1, 10.0, 10.0, 100.0));
        let popped = q.pop().unwrap();
        assert_eq!(popped, QueryId(0));
        // Pause: it must come back ahead of the low-priority one.
        q.requeue(popped);
        assert_eq!(q.pop(), Some(QueryId(0)));
        assert_eq!(q.pop(), Some(QueryId(1)));
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn requeue_unknown_query_panics() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.requeue(QueryId(3));
    }

    #[test]
    fn finish_evicts_query_memo() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        for i in 0..10u32 {
            q.admit(QueryId(i), &qinfo(i as u64, 10.0, 10.0, 100.0));
        }
        assert_eq!(q.memo_len(), 10);
        while let Some(id) = q.pop() {
            q.finish(id);
        }
        assert_eq!(q.memo_len(), 0);
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn requeue_after_finish_panics() {
        let mut q = QueryQueue::new(QueryOrder::Vrd);
        q.admit(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0));
        let id = q.pop().unwrap();
        q.finish(id);
        q.requeue(id);
    }

    #[test]
    fn update_queue_is_fifo() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        u.admit(UpdateId(2), &uinfo(2, 2));
        assert_eq!(u.len(), 3);
        assert_eq!(u.pop(), Some(UpdateId(0)));
        assert_eq!(u.pop(), Some(UpdateId(1)));
        assert_eq!(u.pop(), Some(UpdateId(2)));
        assert!(u.is_empty());
    }

    #[test]
    fn dropped_updates_are_skipped() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 0));
        u.drop_update(UpdateId(0));
        assert_eq!(u.len(), 1);
        assert_eq!(u.pop(), Some(UpdateId(1)));
        assert!(u.is_empty());
        assert_eq!(u.pop(), None);
    }

    #[test]
    fn double_drop_is_idempotent() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.drop_update(UpdateId(0));
        u.drop_update(UpdateId(0));
        assert!(u.is_empty());
    }

    #[test]
    fn update_requeue_keeps_fifo_position() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        let first = u.pop().unwrap();
        assert_eq!(first, UpdateId(0));
        // Paused update 0 returns: must still precede update 1.
        u.requeue(first);
        assert_eq!(u.pop(), Some(UpdateId(0)));
        assert_eq!(u.pop(), Some(UpdateId(1)));
    }

    #[test]
    fn replacement_inherits_dropped_position() {
        // The InheritPosition re-entry policy: the engine drops the
        // invalidated update and admits the replacement under the *same*
        // sequence number; it must pop in the old update's position.
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        u.admit(UpdateId(2), &uinfo(2, 2));
        u.drop_update(UpdateId(1));
        u.admit(UpdateId(3), &uinfo(1, 1)); // replacement, inherited seq 1
        assert_eq!(u.pop(), Some(UpdateId(0)));
        assert_eq!(u.pop(), Some(UpdateId(3)));
        assert_eq!(u.pop(), Some(UpdateId(2)));
        assert!(u.is_empty());
    }

    #[test]
    fn inherited_admit_after_position_was_skipped() {
        // If the invalidated entry's position already drained past, a
        // late inherited admit still lands in sequence order.
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        u.admit(UpdateId(2), &uinfo(2, 2));
        u.drop_update(UpdateId(0));
        assert_eq!(u.pop(), Some(UpdateId(1))); // skips seq 0's hole
        u.admit(UpdateId(3), &uinfo(0, 0)); // inherited seq 0, hole gone
        assert_eq!(u.pop(), Some(UpdateId(3)));
        assert_eq!(u.pop(), Some(UpdateId(2)));
    }

    #[test]
    fn finish_evicts_update_memo() {
        let mut u = UpdateQueue::new();
        u.admit(UpdateId(0), &uinfo(0, 0));
        u.admit(UpdateId(1), &uinfo(1, 1));
        u.drop_update(UpdateId(0));
        let id = u.pop().unwrap();
        u.finish(id);
        assert_eq!(u.memo_len(), 0);
        assert_eq!(u.pop(), None);
    }

    #[test]
    fn drop_then_pop_leaves_no_state() {
        let mut u = UpdateQueue::new();
        for i in 0..8u32 {
            u.admit(UpdateId(i), &uinfo(i as u64, i));
        }
        for i in 0..8u32 {
            u.drop_update(UpdateId(i));
        }
        assert!(u.is_empty());
        assert_eq!(u.pop(), None);
        assert_eq!(u.memo_len(), 0);
        assert_eq!(u.dropped_seqs.len(), 0, "inheritance hints must drain");
    }
}

#[cfg(test)]
mod proptests {
    use super::testutil::*;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the order, every admitted query pops exactly once.
        #[test]
        fn conservation(
            n in 1u32..100,
            order_pick in 0usize..4,
        ) {
            let order = [QueryOrder::Vrd, QueryOrder::Fifo, QueryOrder::Edf, QueryOrder::ProfitDensity][order_pick];
            let mut q = QueryQueue::new(order);
            for i in 0..n {
                q.admit(QueryId(i), &qinfo(i as u64, (i % 7) as f64 + 1.0, (i % 3) as f64, 50.0 + i as f64));
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(id) = q.pop() {
                prop_assert!(seen.insert(id));
            }
            prop_assert_eq!(seen.len(), n as usize);
        }

        /// VRD pops in non-increasing key order.
        #[test]
        fn vrd_is_sorted(profits in proptest::collection::vec((1.0..100.0f64, 1.0..100.0f64, 10.0..200.0f64), 1..60)) {
            let mut q = QueryQueue::new(QueryOrder::Vrd);
            let mut keys = HashMap::new();
            for (i, &(qos, qod, rt)) in profits.iter().enumerate() {
                let info = qinfo(i as u64, qos, qod, rt);
                keys.insert(QueryId(i as u32), info.vrd);
                q.admit(QueryId(i as u32), &info);
            }
            let mut last = f64::INFINITY;
            while let Some(id) = q.pop() {
                let k = keys[&id];
                prop_assert!(k <= last + 1e-12);
                last = k;
            }
        }

        /// Update queue: pops are in arrival order and never include
        /// dropped ids.
        #[test]
        fn update_queue_fifo_with_drops(drops in proptest::collection::hash_set(0u32..50, 0..20)) {
            let mut u = UpdateQueue::new();
            for i in 0..50u32 {
                u.admit(UpdateId(i), &uinfo(i as u64, 0));
            }
            for &d in &drops {
                u.drop_update(UpdateId(d));
            }
            let mut last = None;
            let mut count = 0;
            while let Some(id) = u.pop() {
                prop_assert!(!drops.contains(&id.0));
                if let Some(prev) = last {
                    prop_assert!(id.0 > prev);
                }
                last = Some(id.0);
                count += 1;
            }
            prop_assert_eq!(count, 50 - drops.len());
        }

        /// Drop/inherit/pop interleavings preserve sequence order among
        /// live updates, and finishing everything drains all memos.
        #[test]
        fn update_queue_inheritance_order(
            ops in proptest::collection::vec((0u8..4, 0u32..24), 1..200)
        ) {
            let mut u = UpdateQueue::new();
            let mut next_seq = 0u64;
            let mut next_id = 0u32;
            let mut queued: Vec<(u64, u32)> = Vec::new(); // (seq, id), sorted by seq
            for (op, pick) in ops {
                match op {
                    0 => {
                        // Fresh admit.
                        let (seq, id) = (next_seq, next_id);
                        next_seq += 1;
                        next_id += 1;
                        u.admit(UpdateId(id), &uinfo(seq, 0));
                        queued.push((seq, id));
                        queued.sort_unstable();
                    }
                    1 => {
                        // Invalidate a random queued update and admit a
                        // replacement that inherits its position.
                        if queued.is_empty() { continue; }
                        let idx = pick as usize % queued.len();
                        let (seq, old) = queued[idx];
                        u.drop_update(UpdateId(old));
                        let id = next_id;
                        next_id += 1;
                        u.admit(UpdateId(id), &uinfo(seq, 0));
                        queued[idx] = (seq, id);
                    }
                    2 => {
                        // Invalidate without replacement.
                        if queued.is_empty() { continue; }
                        let idx = pick as usize % queued.len();
                        let (_, old) = queued.remove(idx);
                        u.drop_update(UpdateId(old));
                    }
                    _ => {
                        // Pop: must be the minimum live seq.
                        let popped = u.pop();
                        if queued.is_empty() {
                            prop_assert_eq!(popped, None);
                        } else {
                            let (_, id) = queued.remove(0);
                            prop_assert_eq!(popped, Some(UpdateId(id)));
                            u.finish(UpdateId(id));
                        }
                    }
                }
                prop_assert_eq!(u.len(), queued.len());
            }
            while let Some(id) = u.pop() {
                u.finish(id);
            }
            prop_assert_eq!(u.memo_len(), 0);
        }
    }
}
