//! Dual-priority-queue baselines with a fixed class priority.
//!
//! Section 3.2 of the paper: with two queues, queries and updates each
//! keep their own priority scheme and only the *queues* are compared.
//! Update-High (UH) lets the update queue preempt the query queue —
//! guaranteeing zero staleness but starving queries under update surges;
//! Query-High (QH) is the mirror image. Both order queries by VRD and
//! updates by FIFO. The intro's naive FIFO-UH / FIFO-QH variants
//! (Figure 1) differ only in ordering queries by FIFO.
//!
//! Their shared deficiency — and QUTS' motivation — is the *fixed*
//! priority between the classes: each always favours one quality
//! dimension, whatever the users' contracts say.

use crate::policy::{QueryOrder, QueryQueue, UpdateQueue};
use quts_sim::{Class, QueryId, QueryInfo, Scheduler, SimTime, TxnRef, UpdateId, UpdateInfo};

/// A preemptive dual-queue scheduler with a fixed high-priority class.
#[derive(Debug)]
pub struct DualQueue {
    name: &'static str,
    high: Class,
    queries: QueryQueue,
    updates: UpdateQueue,
}

impl DualQueue {
    /// Update-High: the paper's UH baseline (VRD queries, FIFO updates).
    pub fn uh() -> Self {
        DualQueue {
            name: "UH",
            high: Class::Update,
            queries: QueryQueue::new(QueryOrder::Vrd),
            updates: UpdateQueue::new(),
        }
    }

    /// Query-High: the paper's QH baseline (VRD queries, FIFO updates).
    pub fn qh() -> Self {
        DualQueue {
            name: "QH",
            high: Class::Query,
            queries: QueryQueue::new(QueryOrder::Vrd),
            updates: UpdateQueue::new(),
        }
    }

    /// The intro's naive FIFO-UH (FIFO queries, FIFO updates).
    pub fn fifo_uh() -> Self {
        DualQueue {
            name: "FIFO-UH",
            high: Class::Update,
            queries: QueryQueue::new(QueryOrder::Fifo),
            updates: UpdateQueue::new(),
        }
    }

    /// The intro's naive FIFO-QH (FIFO queries, FIFO updates).
    pub fn fifo_qh() -> Self {
        DualQueue {
            name: "FIFO-QH",
            high: Class::Query,
            queries: QueryQueue::new(QueryOrder::Fifo),
            updates: UpdateQueue::new(),
        }
    }

    /// A custom dual queue (for ablations over the low-level policy).
    pub fn with_order(high: Class, order: QueryOrder) -> Self {
        DualQueue {
            name: match high {
                Class::Update => "UH*",
                Class::Query => "QH*",
            },
            high,
            queries: QueryQueue::new(order),
            updates: UpdateQueue::new(),
        }
    }

    /// Which class preempts the other.
    pub fn high_class(&self) -> Class {
        self.high
    }

    fn queue_nonempty(&self, class: Class) -> bool {
        match class {
            Class::Query => !self.queries.is_empty(),
            Class::Update => !self.updates.is_empty(),
        }
    }

    fn pop_class(&mut self, class: Class) -> Option<TxnRef> {
        match class {
            Class::Query => self.queries.pop().map(TxnRef::Query),
            Class::Update => self.updates.pop().map(TxnRef::Update),
        }
    }
}

impl Scheduler for DualQueue {
    fn name(&self) -> &'static str {
        self.name
    }

    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, _now: SimTime) {
        self.queries.admit(id, info);
    }

    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, _now: SimTime) {
        self.updates.admit(id, info);
    }

    fn drop_update(&mut self, id: UpdateId) {
        self.updates.drop_update(id);
    }

    fn finish(&mut self, txn: TxnRef) {
        match txn {
            TxnRef::Query(q) => self.queries.finish(q),
            TxnRef::Update(u) => self.updates.finish(u),
        }
    }

    fn pop_next(&mut self, _now: SimTime) -> Option<TxnRef> {
        self.pop_class(self.high)
            .or_else(|| self.pop_class(self.high.other()))
    }

    fn requeue(&mut self, txn: TxnRef, _now: SimTime) {
        match txn {
            TxnRef::Query(q) => self.queries.requeue(q),
            TxnRef::Update(u) => self.updates.requeue(u),
        }
    }

    fn should_preempt(&mut self, _now: SimTime, running: TxnRef) -> bool {
        // The high queue preempts a running low-class transaction; within
        // a class execution is non-preemptive.
        running.class() != self.high && self.queue_nonempty(self.high)
    }

    fn has_pending(&self) -> bool {
        !self.queries.is_empty() || !self.updates.is_empty()
    }

    fn queue_depths(&self) -> (usize, usize) {
        (self.queries.len(), self.updates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{qinfo, uinfo};

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn uh_serves_updates_first() {
        let mut s = DualQueue::uh();
        s.admit_query(QueryId(0), &qinfo(0, 99.0, 99.0, 10.0), NOW);
        s.admit_update(UpdateId(0), &uinfo(1, 0), NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
    }

    #[test]
    fn qh_serves_queries_first() {
        let mut s = DualQueue::qh();
        s.admit_update(UpdateId(0), &uinfo(0, 0), NOW);
        s.admit_query(QueryId(0), &qinfo(1, 1.0, 1.0, 100.0), NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
    }

    #[test]
    fn uh_preempts_running_query_on_update_arrival() {
        let mut s = DualQueue::uh();
        assert!(!s.should_preempt(NOW, TxnRef::Query(QueryId(0))));
        s.admit_update(UpdateId(0), &uinfo(0, 0), NOW);
        assert!(s.should_preempt(NOW, TxnRef::Query(QueryId(0))));
        // A running update is never preempted.
        assert!(!s.should_preempt(NOW, TxnRef::Update(UpdateId(1))));
    }

    #[test]
    fn qh_preempts_running_update_on_query_arrival() {
        let mut s = DualQueue::qh();
        s.admit_query(QueryId(0), &qinfo(0, 1.0, 1.0, 50.0), NOW);
        assert!(s.should_preempt(NOW, TxnRef::Update(UpdateId(0))));
        assert!(!s.should_preempt(NOW, TxnRef::Query(QueryId(1))));
    }

    #[test]
    fn uh_orders_queries_by_vrd() {
        let mut s = DualQueue::uh();
        s.admit_query(QueryId(0), &qinfo(0, 10.0, 0.0, 100.0), NOW); // vrd .1
        s.admit_query(QueryId(1), &qinfo(1, 90.0, 0.0, 100.0), NOW); // vrd .9
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(1))));
    }

    #[test]
    fn fifo_variants_order_queries_by_arrival() {
        let mut s = DualQueue::fifo_qh();
        s.admit_query(QueryId(0), &qinfo(0, 1.0, 0.0, 100.0), NOW);
        s.admit_query(QueryId(1), &qinfo(1, 99.0, 0.0, 10.0), NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
    }

    #[test]
    fn requeue_both_classes() {
        let mut s = DualQueue::qh();
        s.admit_query(QueryId(0), &qinfo(0, 1.0, 1.0, 50.0), NOW);
        s.admit_update(UpdateId(0), &uinfo(1, 0), NOW);
        let q = s.pop_next(NOW).unwrap();
        let u = s.pop_next(NOW).unwrap();
        s.requeue(u, NOW);
        s.requeue(q, NOW);
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Query(QueryId(0))));
        assert_eq!(s.pop_next(NOW), Some(TxnRef::Update(UpdateId(0))));
        assert!(!s.has_pending());
    }

    #[test]
    fn drop_update_clears_preemption_pressure() {
        let mut s = DualQueue::uh();
        s.admit_update(UpdateId(0), &uinfo(0, 0), NOW);
        assert!(s.should_preempt(NOW, TxnRef::Query(QueryId(0))));
        s.drop_update(UpdateId(0));
        assert!(!s.should_preempt(NOW, TxnRef::Query(QueryId(0))));
        assert!(!s.has_pending());
    }
}
