//! The single-priority-queue baseline: global FIFO.
//!
//! Section 3.1 of the paper argues that FIFO is the only reasonable
//! single-queue policy — query priorities (time + profit) and update
//! priorities (staleness + profit) are fundamentally incomparable, so no
//! global priority scheme can use the full QC information. FIFO simply
//! interleaves queries and updates by arrival and never preempts.
//!
//! Ordering uses the engine's global arrival sequence numbers, so an
//! update that replaces an invalidated one (register-table swap) keeps
//! the old queue position.

use quts_sim::{QueryId, QueryInfo, Scheduler, SimTime, TxnRef, UpdateId, UpdateInfo};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Key {
    Query(u32),
    Update(u32),
}

impl Key {
    fn txn(self) -> TxnRef {
        match self {
            Key::Query(q) => TxnRef::Query(QueryId(q)),
            Key::Update(u) => TxnRef::Update(UpdateId(u)),
        }
    }
}

/// Non-preemptive FIFO over the merged arrival stream of both classes.
#[derive(Debug, Default)]
pub struct GlobalFifo {
    heap: BinaryHeap<Reverse<(u64, Key)>>,
    seqs: HashMap<Key, u64>,
    dropped: HashSet<UpdateId>,
    live: usize,
}

impl GlobalFifo {
    /// An empty global FIFO.
    pub fn new() -> Self {
        GlobalFifo::default()
    }

    fn push(&mut self, seq: u64, key: Key) {
        self.seqs.insert(key, seq);
        self.heap.push(Reverse((seq, key)));
        self.live += 1;
    }
}

impl Scheduler for GlobalFifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, _now: SimTime) {
        self.push(info.seq, Key::Query(id.0));
    }

    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, _now: SimTime) {
        self.push(info.seq, Key::Update(id.0));
    }

    fn drop_update(&mut self, id: UpdateId) {
        if self.seqs.remove(&Key::Update(id.0)).is_some() && self.dropped.insert(id) {
            self.live = self.live.saturating_sub(1);
        }
    }

    fn finish(&mut self, txn: TxnRef) {
        let key = match txn {
            TxnRef::Query(q) => Key::Query(q.0),
            TxnRef::Update(u) => Key::Update(u.0),
        };
        self.seqs.remove(&key);
    }

    fn pop_next(&mut self, _now: SimTime) -> Option<TxnRef> {
        while let Some(Reverse((_, key))) = self.heap.pop() {
            if let Key::Update(u) = key {
                if self.dropped.remove(&UpdateId(u)) {
                    continue;
                }
            }
            self.live -= 1;
            return Some(key.txn());
        }
        None
    }

    fn requeue(&mut self, txn: TxnRef, _now: SimTime) {
        let key = match txn {
            TxnRef::Query(q) => Key::Query(q.0),
            TxnRef::Update(u) => Key::Update(u.0),
        };
        let &seq = self
            .seqs
            .get(&key)
            .expect("requeued transaction was never admitted");
        self.heap.push(Reverse((seq, key)));
        self.live += 1;
    }

    fn should_preempt(&mut self, _now: SimTime, _running: TxnRef) -> bool {
        false
    }

    fn has_pending(&self) -> bool {
        self.live > 0
    }

    /// O(queue) walk over the heap — metrics-path only, never on the
    /// dispatch path.
    fn queue_depths(&self) -> (usize, usize) {
        let mut queries = 0;
        let mut updates = 0;
        for Reverse((_, key)) in &self.heap {
            match key {
                Key::Query(_) => queries += 1,
                Key::Update(u) if !self.dropped.contains(&UpdateId(*u)) => updates += 1,
                Key::Update(_) => {}
            }
        }
        (queries, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{qinfo, uinfo};

    #[test]
    fn arrival_order_is_preserved() {
        let mut s = GlobalFifo::new();
        let now = SimTime::ZERO;
        s.admit_update(UpdateId(0), &uinfo(0, 0), now);
        s.admit_query(QueryId(0), &qinfo(1, 10.0, 10.0, 50.0), now);
        s.admit_update(UpdateId(1), &uinfo(2, 1), now);
        assert!(s.has_pending());
        assert_eq!(s.pop_next(now), Some(TxnRef::Update(UpdateId(0))));
        assert_eq!(s.pop_next(now), Some(TxnRef::Query(QueryId(0))));
        assert_eq!(s.pop_next(now), Some(TxnRef::Update(UpdateId(1))));
        assert_eq!(s.pop_next(now), None);
        assert!(!s.has_pending());
    }

    #[test]
    fn never_preempts() {
        let mut s = GlobalFifo::new();
        let now = SimTime::ZERO;
        s.admit_query(QueryId(0), &qinfo(0, 10.0, 10.0, 50.0), now);
        assert!(!s.should_preempt(now, TxnRef::Update(UpdateId(9))));
        assert!(!s.should_preempt(now, TxnRef::Query(QueryId(9))));
    }

    #[test]
    fn dropped_update_is_skipped_and_uncounted() {
        let mut s = GlobalFifo::new();
        let now = SimTime::ZERO;
        s.admit_update(UpdateId(0), &uinfo(0, 0), now);
        s.admit_update(UpdateId(1), &uinfo(1, 0), now);
        s.drop_update(UpdateId(0));
        s.drop_update(UpdateId(0)); // idempotent
        assert!(s.has_pending());
        assert_eq!(s.pop_next(now), Some(TxnRef::Update(UpdateId(1))));
        assert!(!s.has_pending());
    }

    #[test]
    fn replacement_update_inherits_position() {
        let mut s = GlobalFifo::new();
        let now = SimTime::ZERO;
        s.admit_update(UpdateId(0), &uinfo(5, 0), now);
        s.admit_query(QueryId(0), &qinfo(6, 1.0, 1.0, 50.0), now);
        // Update 1 replaces update 0, carrying the old seq 5 (the engine
        // passes the inherited value in `info.seq`).
        s.drop_update(UpdateId(0));
        s.admit_update(UpdateId(1), &uinfo(5, 0), now);
        // It still precedes the query that arrived after the original.
        assert_eq!(s.pop_next(now), Some(TxnRef::Update(UpdateId(1))));
        assert_eq!(s.pop_next(now), Some(TxnRef::Query(QueryId(0))));
    }

    #[test]
    fn requeue_restores_position() {
        let mut s = GlobalFifo::new();
        let now = SimTime::ZERO;
        s.admit_query(QueryId(0), &qinfo(0, 1.0, 1.0, 50.0), now);
        s.admit_query(QueryId(1), &qinfo(1, 1.0, 1.0, 50.0), now);
        let first = s.pop_next(now).unwrap();
        s.requeue(first, now);
        assert_eq!(s.pop_next(now), Some(first));
        assert_eq!(s.pop_next(now), Some(TxnRef::Query(QueryId(1))));
    }
}
