//! A non-preemptive shell around any scheduler.
//!
//! [`NonPreemptive`] forwards everything to the wrapped policy except
//! [`Scheduler::should_preempt`], which always answers `false`: a running
//! transaction finishes before the CPU is handed back to the queues.
//!
//! This is the envelope the conformance oracle runs the simulator under.
//! The live engine executes transactions atomically (dispatch and commit
//! happen inside one `execute_one` call with no pause points), so a
//! differential sim-vs-live comparison is only meaningful with preemption
//! disabled on the sim side. Wrapping QUTS this way is sound because its
//! `refresh` is call-pattern invariant — suppressing the refresh that
//! `should_preempt` would have performed changes no draw and no
//! adaptation, it merely defers them to the next admission, pop, or
//! timer.

use quts_sim::{
    QueryId, QueryInfo, SchedDecision, Scheduler, SimTime, TxnRef, UpdateId, UpdateInfo,
};

/// Wraps a scheduler and suppresses preemption; see the module docs.
#[derive(Debug)]
pub struct NonPreemptive<S>(pub S);

impl<S: Scheduler> Scheduler for NonPreemptive<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, now: SimTime) {
        self.0.admit_query(id, info, now);
    }

    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, now: SimTime) {
        self.0.admit_update(id, info, now);
    }

    fn drop_update(&mut self, id: UpdateId) {
        self.0.drop_update(id);
    }

    fn finish(&mut self, txn: TxnRef) {
        self.0.finish(txn);
    }

    fn pop_next(&mut self, now: SimTime) -> Option<TxnRef> {
        self.0.pop_next(now)
    }

    fn requeue(&mut self, txn: TxnRef, now: SimTime) {
        self.0.requeue(txn, now);
    }

    fn should_preempt(&mut self, _now: SimTime, _running: TxnRef) -> bool {
        false
    }

    fn next_timer(&mut self, now: SimTime) -> Option<SimTime> {
        self.0.next_timer(now)
    }

    fn on_timer(&mut self, now: SimTime) {
        self.0.on_timer(now);
    }

    fn has_pending(&self) -> bool {
        self.0.has_pending()
    }

    fn rho_history(&self) -> Option<&[(SimTime, f64)]> {
        self.0.rho_history()
    }

    fn set_decision_trace(&mut self, enabled: bool) {
        self.0.set_decision_trace(enabled);
    }

    fn drain_decisions(&mut self, sink: &mut Vec<SchedDecision>) {
        self.0.drain_decisions(sink);
    }

    fn queue_depths(&self) -> (usize, usize) {
        self.0.queue_depths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{qinfo, uinfo};
    use crate::{DualQueue, Quts, QutsConfig};
    use quts_sim::Class;

    #[test]
    fn forwards_pops_but_never_preempts() {
        // Update-high would normally preempt a running query the moment
        // an update arrives; the shell must swallow exactly that call.
        let mut s = NonPreemptive(DualQueue::uh());
        s.admit_query(QueryId(0), &qinfo(0, 10.0, 10.0, 100.0), SimTime::ZERO);
        let running = s.pop_next(SimTime::ZERO).expect("query pops");
        assert_eq!(running.class(), Class::Query);
        s.admit_update(UpdateId(0), &uinfo(1, 0), SimTime::from_ms(1));
        assert!(!s.should_preempt(SimTime::from_ms(1), running));
        // The queued update is untouched and pops next, exactly as the
        // inner policy orders it.
        assert!(s.has_pending());
        let next = s.pop_next(SimTime::from_ms(2)).expect("update pops");
        assert_eq!(next.class(), Class::Update);
    }

    #[test]
    fn wrapped_quts_keeps_its_decision_stream() {
        let run = |wrapped: bool| {
            let cfg = QutsConfig::default().with_alpha(0.5).with_seed(17);
            let mut boxed: Box<dyn Scheduler> = if wrapped {
                Box::new(NonPreemptive(Quts::new(cfg)))
            } else {
                Box::new(Quts::new(cfg))
            };
            boxed.set_decision_trace(true);
            boxed.admit_query(QueryId(0), &qinfo(0, 30.0, 60.0, 100.0), SimTime::ZERO);
            boxed.on_timer(SimTime::from_ms(2500));
            let mut sink = Vec::new();
            boxed.drain_decisions(&mut sink);
            sink.iter()
                .map(|d| (d.at_us, format!("{:?}", d.event)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }
}
