//! QUTS: Query-Update Time-Sharing, the paper's two-level scheduler.
//!
//! **High level** (Table 2 of the paper): time is sliced into *atoms* of
//! length τ. At each atom boundary — or whenever the favoured queue runs
//! dry — a coin with bias ρ picks which queue holds the higher priority
//! for the next atom: the query queue with probability ρ, the update
//! queue otherwise. Every adaptation period ω, ρ is re-optimised from the
//! Quality Contracts submitted during the *previous* period (Eq. 5) and
//! smoothed with the aging factor α (Eq. 6).
//!
//! **Low level**: each queue keeps its own policy — VRD for queries and
//! FIFO for updates by default, any [`QueryOrder`] for ablations.
//!
//! The scheduler is work-conserving: when the favoured queue is empty the
//! other queue runs (with ρ = 1 updates still execute, but only when no
//! query is waiting — exactly the behaviour Figure 9d describes).

use crate::policy::{QueryOrder, QueryQueue, UpdateQueue};
use crate::rho::RhoController;
use quts_sim::{
    Class, QueryId, QueryInfo, SchedDecision, Scheduler, SimDuration, SimTime, TraceClass,
    TraceEvent, TxnRef, UpdateId, UpdateInfo,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// QUTS tuning knobs and their paper defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QutsConfig {
    /// Atom time τ: the minimal interval between high-level switches
    /// (default 10 ms; rule of thumb: at least the maximum query cost).
    pub tau: SimDuration,
    /// Adaptation period ω: how often ρ is re-optimised (default 1000 ms).
    pub omega: SimDuration,
    /// Aging factor α of Eq. 6 (default 0.2; "the exact α does not
    /// matter much").
    pub alpha: f64,
    /// ρ before the first adaptation (default 0.75, the midpoint of the
    /// feasible `[0.5, 1]` band).
    pub initial_rho: f64,
    /// Seed of the coin-flip RNG; runs are deterministic per seed.
    pub seed: u64,
    /// Low-level query queue policy (default VRD, as in the paper).
    pub query_order: QueryOrder,
    /// Whether ρ adapts at all. `false` freezes ρ at `initial_rho` —
    /// the static-allocation ablation that quantifies what the paper's
    /// adaptive feedback loop is worth.
    pub adaptive: bool,
}

impl Default for QutsConfig {
    fn default() -> Self {
        QutsConfig {
            tau: SimDuration::from_ms(10),
            omega: SimDuration::from_ms(1000),
            alpha: 0.2,
            initial_rho: 0.75,
            seed: 0x5157_5453, // "QUTS"
            query_order: QueryOrder::Vrd,
            adaptive: true,
        }
    }
}

impl QutsConfig {
    /// Builder: sets τ.
    pub fn with_tau(mut self, tau: SimDuration) -> Self {
        self.tau = tau;
        self
    }

    /// Builder: sets ω.
    pub fn with_omega(mut self, omega: SimDuration) -> Self {
        self.omega = omega;
        self
    }

    /// Builder: sets α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder: sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the low-level query policy.
    pub fn with_query_order(mut self, order: QueryOrder) -> Self {
        self.query_order = order;
        self
    }

    /// Builder: freezes ρ at `rho` — no adaptation ever happens.
    ///
    /// # Panics
    /// Panics unless `rho ∈ [0, 1]`.
    pub fn with_fixed_rho(mut self, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        self.initial_rho = rho;
        self.adaptive = false;
        self
    }
}

/// The Query-Update Time-Sharing scheduler.
///
/// ```
/// use quts_sched::{Quts, QutsConfig};
/// use quts_sim::SimDuration;
///
/// // Paper defaults: tau = 10 ms, omega = 1 s, VRD queries, FIFO updates.
/// let quts = Quts::with_defaults();
/// assert_eq!(quts.rho(), 0.75); // before the first adaptation
///
/// // A half-second adaptation period and a frozen rho for ablations:
/// let tuned = Quts::new(
///     QutsConfig::default()
///         .with_omega(SimDuration::from_ms(500))
///         .with_fixed_rho(0.9),
/// );
/// assert_eq!(tuned.rho(), 0.9);
/// ```
#[derive(Debug)]
pub struct Quts {
    tau: SimDuration,
    omega: SimDuration,
    adaptive: bool,
    controller: RhoController,
    rng: StdRng,
    queries: QueryQueue,
    updates: UpdateQueue,
    /// Which class holds the higher priority in the current atom.
    state: Class,
    /// End of the current atom.
    state_until: SimTime,
    /// Next adaptation boundary.
    next_adapt: SimTime,
    /// `QOSmax` / `QODmax` submitted during the current period (Eq. 5
    /// consumes them at the boundary).
    acc_qos: f64,
    acc_qod: f64,
    /// `(boundary, ρ)` per adaptation period — Figure 9d.
    history: Vec<(SimTime, f64)>,
    /// Buffer atom draws and adaptation steps as [`SchedDecision`]s for
    /// the host engine to drain. Off (and free) by default.
    trace_decisions: bool,
    decisions: Vec<SchedDecision>,
}

impl Quts {
    /// A QUTS scheduler with the given configuration.
    ///
    /// # Panics
    /// Panics if τ or ω is zero, or α/ρ are out of range (see
    /// [`RhoController::new`]).
    pub fn new(cfg: QutsConfig) -> Self {
        assert!(!cfg.tau.is_zero(), "atom time must be positive");
        assert!(!cfg.omega.is_zero(), "adaptation period must be positive");
        let controller = RhoController::new(cfg.alpha, cfg.initial_rho);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let state = if rng.random::<f64>() < controller.rho() {
            Class::Query
        } else {
            Class::Update
        };
        Quts {
            tau: cfg.tau,
            omega: cfg.omega,
            adaptive: cfg.adaptive,
            controller,
            rng,
            queries: QueryQueue::new(cfg.query_order),
            updates: UpdateQueue::new(),
            state,
            state_until: SimTime::ZERO + cfg.tau,
            next_adapt: SimTime::ZERO + cfg.omega,
            acc_qos: 0.0,
            acc_qod: 0.0,
            history: Vec::new(),
            trace_decisions: false,
            decisions: Vec::new(),
        }
    }

    /// A QUTS scheduler with all paper defaults.
    pub fn with_defaults() -> Self {
        Quts::new(QutsConfig::default())
    }

    /// The current smoothed ρ.
    pub fn rho(&self) -> f64 {
        self.controller.rho()
    }

    /// The class currently holding the higher priority.
    pub fn current_state(&self) -> Class {
        self.state
    }

    fn draw_state(&mut self) -> Class {
        if self.rng.random::<f64>() < self.controller.rho() {
            Class::Query
        } else {
            Class::Update
        }
    }

    /// Records an atom-slice start while decision tracing is on.
    fn trace_atom(&mut self, at: SimTime) {
        if self.trace_decisions {
            self.decisions.push(SchedDecision {
                at_us: at.as_micros(),
                event: TraceEvent::AtomStart {
                    class: match self.state {
                        Class::Query => TraceClass::Query,
                        Class::Update => TraceClass::Update,
                    },
                    rho: self.controller.rho(),
                    queries_queued: self.queries.len() as u64,
                    updates_queued: self.updates.len() as u64,
                },
            });
        }
    }

    /// Processes every adaptation and atom boundary up to `now`.
    ///
    /// Boundaries settle in chronological order, an adaptation winning an
    /// exact tie with an atom boundary so the atom's coin draw sees the
    /// freshly adapted ρ. Chronological settling makes `refresh` call-
    /// pattern invariant: one lazy catch-up jump performs exactly the
    /// draws an eager boundary-by-boundary caller would, so the live
    /// engine (which refreshes at decision points) and the simulator
    /// (which refreshes at admissions and timers) stay bit-identical.
    fn refresh(&mut self, now: SimTime) {
        loop {
            let adapt_due = self.next_adapt <= now;
            let atom_due = self.state_until <= now;
            if adapt_due && self.next_adapt <= self.state_until {
                let old_rho = self.controller.rho();
                let rho = if self.adaptive {
                    self.controller.adapt(self.acc_qos, self.acc_qod)
                } else {
                    old_rho
                };
                if self.trace_decisions {
                    self.decisions.push(SchedDecision {
                        at_us: self.next_adapt.as_micros(),
                        event: TraceEvent::Adapt {
                            old_rho,
                            new_rho: rho,
                            qos_max: self.acc_qos,
                            qod_max: self.acc_qod,
                        },
                    });
                }
                self.acc_qos = 0.0;
                self.acc_qod = 0.0;
                self.history.push((self.next_adapt, rho));
                self.next_adapt += self.omega;
            } else if atom_due {
                self.state = self.draw_state();
                let atom_start = self.state_until;
                self.state_until += self.tau;
                self.trace_atom(atom_start);
            } else {
                break;
            }
        }
    }

    fn queue_empty(&self, class: Class) -> bool {
        match class {
            Class::Query => self.queries.is_empty(),
            Class::Update => self.updates.is_empty(),
        }
    }
}

impl Scheduler for Quts {
    fn name(&self) -> &'static str {
        "QUTS"
    }

    fn admit_query(&mut self, id: QueryId, info: &QueryInfo, now: SimTime) {
        self.refresh(now);
        self.acc_qos += info.qosmax;
        self.acc_qod += info.qodmax;
        self.queries.admit(id, info);
    }

    fn admit_update(&mut self, id: UpdateId, info: &UpdateInfo, now: SimTime) {
        self.refresh(now);
        self.updates.admit(id, info);
    }

    fn drop_update(&mut self, id: UpdateId) {
        self.updates.drop_update(id);
    }

    fn finish(&mut self, txn: TxnRef) {
        match txn {
            TxnRef::Query(q) => self.queries.finish(q),
            TxnRef::Update(u) => self.updates.finish(u),
        }
    }

    fn pop_next(&mut self, now: SimTime) -> Option<TxnRef> {
        self.refresh(now);
        // "A state change may happen every τ time, or if the picked queue
        // is empty at any instant of time" — re-draw when the favoured
        // queue ran dry while the other still has work.
        if self.queue_empty(self.state) && !self.queue_empty(self.state.other()) {
            self.state = self.draw_state();
            self.state_until = now + self.tau;
            self.trace_atom(now);
        }
        let class = if !self.queue_empty(self.state) {
            self.state
        } else {
            self.state.other()
        };
        match class {
            Class::Query => self.queries.pop().map(TxnRef::Query),
            Class::Update => self.updates.pop().map(TxnRef::Update),
        }
    }

    fn requeue(&mut self, txn: TxnRef, now: SimTime) {
        self.refresh(now);
        match txn {
            TxnRef::Query(q) => self.queries.requeue(q),
            TxnRef::Update(u) => self.updates.requeue(u),
        }
    }

    fn should_preempt(&mut self, now: SimTime, running: TxnRef) -> bool {
        self.refresh(now);
        running.class() != self.state && !self.queue_empty(self.state)
    }

    fn next_timer(&mut self, now: SimTime) -> Option<SimTime> {
        self.refresh(now);
        Some(self.state_until.min(self.next_adapt))
    }

    fn on_timer(&mut self, now: SimTime) {
        self.refresh(now);
    }

    fn has_pending(&self) -> bool {
        !self.queries.is_empty() || !self.updates.is_empty()
    }

    fn rho_history(&self) -> Option<&[(SimTime, f64)]> {
        Some(&self.history)
    }

    fn set_decision_trace(&mut self, enabled: bool) {
        self.trace_decisions = enabled;
        if !enabled {
            self.decisions.clear();
        }
    }

    fn drain_decisions(&mut self, sink: &mut Vec<SchedDecision>) {
        sink.append(&mut self.decisions);
    }

    fn queue_depths(&self) -> (usize, usize) {
        (self.queries.len(), self.updates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{qinfo, uinfo};

    fn qos_only(seq: u64) -> quts_sim::QueryInfo {
        qinfo(seq, 50.0, 0.0, 100.0)
    }

    fn qod_only(seq: u64) -> quts_sim::QueryInfo {
        qinfo(seq, 0.0, 50.0, 100.0)
    }

    /// α = 1 makes ρ jump straight to each period's optimum.
    fn jumping_quts() -> Quts {
        Quts::new(QutsConfig::default().with_alpha(1.0))
    }

    #[test]
    fn qos_only_workload_drives_rho_to_one() {
        let mut s = jumping_quts();
        s.admit_query(QueryId(0), &qos_only(0), SimTime::from_ms(10));
        // Cross the first adaptation boundary.
        s.on_timer(SimTime::from_ms(1000));
        assert_eq!(s.rho(), 1.0);
        // With ρ = 1 the state is always Query.
        for i in 0..50 {
            s.on_timer(SimTime::from_ms(1000 + 10 * (i + 1)));
            assert_eq!(s.current_state(), Class::Query);
        }
    }

    #[test]
    fn qod_only_workload_drives_rho_to_half() {
        let mut s = jumping_quts();
        s.admit_query(QueryId(0), &qod_only(0), SimTime::from_ms(10));
        s.on_timer(SimTime::from_ms(1000));
        assert!((s.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adaptation_uses_only_previous_period() {
        let mut s = jumping_quts();
        // Period 0: QoS-only → ρ = 1 at t=1000.
        s.admit_query(QueryId(0), &qos_only(0), SimTime::from_ms(100));
        s.on_timer(SimTime::from_ms(1000));
        assert_eq!(s.rho(), 1.0);
        // Period 1: QoD-only → ρ = 0.5 at t=2000; period-0 submissions
        // must not leak in.
        s.admit_query(QueryId(1), &qod_only(1), SimTime::from_ms(1100));
        s.on_timer(SimTime::from_ms(2000));
        assert!((s.rho() - 0.5).abs() < 1e-12);
        // Empty period 2 leaves ρ unchanged.
        s.on_timer(SimTime::from_ms(3000));
        assert!((s.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn history_records_each_boundary() {
        let mut s = jumping_quts();
        s.admit_query(QueryId(0), &qos_only(0), SimTime::from_ms(5));
        s.on_timer(SimTime::from_ms(3500));
        let h = s.rho_history().unwrap();
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].0, SimTime::from_ms(1000));
        assert_eq!(h[1].0, SimTime::from_ms(2000));
        assert_eq!(h[2].0, SimTime::from_ms(3000));
        assert_eq!(h[0].1, 1.0);
    }

    #[test]
    fn favoured_empty_queue_redraws_and_serves_other() {
        let mut s = jumping_quts();
        // Force ρ = 1 → state Query forever.
        s.admit_query(QueryId(0), &qos_only(0), SimTime::ZERO);
        s.on_timer(SimTime::from_ms(1000));
        let _ = s.pop_next(SimTime::from_ms(1001)); // drain the query
                                                    // Only updates remain: work conservation must still serve them.
        s.admit_update(UpdateId(0), &uinfo(0, 0), SimTime::from_ms(1002));
        assert_eq!(
            s.pop_next(SimTime::from_ms(1003)),
            Some(TxnRef::Update(UpdateId(0)))
        );
    }

    #[test]
    fn rho_one_never_preempts_updates_for_nothing() {
        let mut s = jumping_quts();
        s.admit_query(QueryId(0), &qos_only(0), SimTime::ZERO);
        s.on_timer(SimTime::from_ms(1000));
        assert_eq!(s.rho(), 1.0);
        let _ = s.pop_next(SimTime::from_ms(1000)); // drain the query queue
                                                    // Update running, no queries waiting → keep running.
        assert!(!s.should_preempt(SimTime::from_ms(1001), TxnRef::Update(UpdateId(0))));
        // A query arrives → state is Query (ρ=1) → preempt the update.
        s.admit_query(QueryId(1), &qos_only(1), SimTime::from_ms(1002));
        assert!(s.should_preempt(SimTime::from_ms(1002), TxnRef::Update(UpdateId(0))));
    }

    #[test]
    fn next_timer_is_next_boundary() {
        let mut s = Quts::with_defaults();
        let t = s.next_timer(SimTime::from_ms(3)).unwrap();
        assert_eq!(t, SimTime::from_ms(10)); // first atom boundary
        let t = s.next_timer(SimTime::from_ms(995)).unwrap();
        assert_eq!(t, SimTime::from_ms(1000)); // adaptation boundary
    }

    #[test]
    fn timer_is_always_in_the_future() {
        let mut s = Quts::with_defaults();
        for ms in [0u64, 9, 10, 11, 999, 1000, 12345] {
            let now = SimTime::from_ms(ms);
            let t = s.next_timer(now).unwrap();
            assert!(t > now, "timer {t} not after {now}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = Quts::new(QutsConfig::default().with_seed(seed));
            let mut states = Vec::new();
            // Mixed workload keeps rho strictly between 0.5 and 1 so the
            // coin flips matter.
            s.admit_query(QueryId(0), &qinfo(0, 30.0, 60.0, 100.0), SimTime::ZERO);
            for i in 1..200u64 {
                s.on_timer(SimTime::from_ms(10 * i));
                states.push(s.current_state());
            }
            states
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should flip differently");
    }

    #[test]
    fn low_level_is_vrd_by_default() {
        let mut s = Quts::with_defaults();
        let now = SimTime::ZERO;
        s.admit_query(QueryId(0), &qinfo(0, 10.0, 0.0, 100.0), now);
        s.admit_query(QueryId(1), &qinfo(1, 90.0, 0.0, 100.0), now);
        // Whatever the atom state, queries pop by VRD when the query
        // queue is served.
        let popped = s.pop_next(now).unwrap();
        assert_eq!(popped, TxnRef::Query(QueryId(1)));
    }

    #[test]
    fn fixed_rho_never_moves() {
        let mut s = Quts::new(QutsConfig::default().with_fixed_rho(0.8));
        // A QoS-only workload would normally drive rho to 1.
        s.admit_query(QueryId(0), &qos_only(0), SimTime::from_ms(10));
        for i in 1..=20 {
            s.on_timer(SimTime::from_ms(1000 * i));
            assert_eq!(s.rho(), 0.8);
        }
        let h = s.rho_history().unwrap();
        assert!(h.iter().all(|&(_, rho)| rho == 0.8));
    }

    #[test]
    #[should_panic(expected = "atom time")]
    fn zero_tau_rejected() {
        let _ = Quts::new(QutsConfig::default().with_tau(SimDuration::ZERO));
    }

    #[test]
    fn lazy_refresh_matches_eager_refresh() {
        // The refresh-ordering lemma behind the conformance oracle: one
        // big catch-up jump must produce exactly the decision stream,
        // smoothed ρ, and current atom state of a caller that steps every
        // millisecond. Mixed contracts make ρ actually move, and 5005 ms
        // crosses five adaptation boundaries plus hundreds of atoms.
        let run = |eager: bool| {
            let mut s = Quts::new(QutsConfig::default().with_alpha(0.5).with_seed(9));
            s.set_decision_trace(true);
            s.admit_query(QueryId(0), &qinfo(0, 30.0, 60.0, 100.0), SimTime::ZERO);
            if eager {
                for ms in 1..=5005 {
                    s.on_timer(SimTime::from_ms(ms));
                }
            } else {
                s.on_timer(SimTime::from_ms(5005));
            }
            let mut sink = Vec::new();
            s.drain_decisions(&mut sink);
            let stream: Vec<(u64, &'static str, String)> = sink
                .iter()
                .map(|d| (d.at_us, d.event.kind(), format!("{:?}", d.event)))
                .collect();
            (stream, s.rho(), s.current_state())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn decision_trace_records_atoms_and_adaptations() {
        let mut s = jumping_quts();
        s.set_decision_trace(true);
        s.admit_query(QueryId(0), &qos_only(0), SimTime::from_ms(5));
        // Cross one adaptation boundary and many atom boundaries.
        s.on_timer(SimTime::from_ms(1005));
        let mut sink = Vec::new();
        s.drain_decisions(&mut sink);
        let adapts: Vec<_> = sink
            .iter()
            .filter(|d| matches!(d.event, TraceEvent::Adapt { .. }))
            .collect();
        assert_eq!(adapts.len(), 1);
        assert_eq!(adapts[0].at_us, 1_000_000);
        match adapts[0].event {
            TraceEvent::Adapt {
                old_rho,
                new_rho,
                qos_max,
                qod_max,
            } => {
                assert_eq!(old_rho, 0.75);
                assert_eq!(new_rho, 1.0); // α = 1 jumps to the optimum
                assert_eq!(qos_max, 50.0);
                assert_eq!(qod_max, 0.0);
            }
            _ => unreachable!(),
        }
        let atoms = sink
            .iter()
            .filter(|d| matches!(d.event, TraceEvent::AtomStart { .. }))
            .count();
        assert_eq!(atoms, 100, "one draw per 10 ms atom over 1005 ms");
        // Decisions are buffered in decision order; within one kind the
        // timestamps are non-decreasing. (A single `refresh` jump that
        // crosses both boundary kinds settles them chronologically,
        // adaptation first on an exact tie, exactly as an eager caller
        // stepping boundary by boundary would.)
        let atom_times: Vec<u64> = sink
            .iter()
            .filter(|d| matches!(d.event, TraceEvent::AtomStart { .. }))
            .map(|d| d.at_us)
            .collect();
        assert!(atom_times.windows(2).all(|w| w[0] <= w[1]));
        let mut again = Vec::new();
        s.drain_decisions(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn decision_trace_off_buffers_nothing() {
        let mut s = jumping_quts();
        s.admit_query(QueryId(0), &qos_only(0), SimTime::from_ms(5));
        s.on_timer(SimTime::from_ms(5005));
        let mut sink = Vec::new();
        s.drain_decisions(&mut sink);
        assert!(sink.is_empty());
    }

    #[test]
    fn queue_depths_track_both_classes() {
        let mut s = Quts::with_defaults();
        assert_eq!(s.queue_depths(), (0, 0));
        s.admit_query(QueryId(0), &qos_only(0), SimTime::ZERO);
        s.admit_query(QueryId(1), &qos_only(1), SimTime::ZERO);
        s.admit_update(UpdateId(0), &uinfo(0, 0), SimTime::ZERO);
        assert_eq!(s.queue_depths(), (2, 1));
        let _ = s.pop_next(SimTime::ZERO);
        let (q, u) = s.queue_depths();
        assert_eq!(q + u, 2);
    }
}
